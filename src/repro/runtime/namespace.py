"""Multi-object register namespaces: many keys, one simulation.

The paper's protocols emulate a *single* atomic register; a production
namespace serves many keys.  Because atomicity is a per-register property,
the natural composition is N independent protocol instances — and because
contention, failures and load skew only interact through *time*, the
instances must share one clock.  :class:`MultiRegisterCluster` does exactly
that: it owns one :class:`~repro.sim.simulation.Simulation` (one event
queue, one delay model, one RNG) and instantiates one full protocol stack
per object under a pid namespace (object ``j``'s servers are ``o3/s0`` …,
its clients ``o3/w0`` / ``o3/r0`` …), so all objects' messages interleave
on the shared timeline exactly as traffic to different keys interleaves in
a real deployment.

Per-object protocol state stays fully isolated: each object has its own
servers, erasure coder, storage tracker, failure injector and history sink
(pass ``recorder_factory`` to give each object a bounded
:class:`~repro.consistency.stream.StreamingRecorder` with an incremental
checker subscribed — see :class:`repro.consistency.multiplex.ObjectCheckerMux`).
Communication cost accounting is shared (one network, one tracker) and
attributed per operation id, which stays unambiguous because operation ids
embed the namespaced client pid.

:meth:`MultiRegisterCluster.run_streamed` is the namespace counterpart of
the single-register closed loop: a
:class:`~repro.workloads.keyed.KeyDistribution` splits the operation
budget over objects (Zipf-skewed hot keys or uniform), each object arms
its own closed-loop driver, and one shared simulation run drives them all
concurrently.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.baselines.registry import make_cluster
from repro.consistency.history import OperationRecord
from repro.consistency.stream import HistorySink
from repro.metrics.costs import CommunicationCostTracker
from repro.metrics.latency import LatencyHistogram
from repro.runtime.cluster import RegisterCluster, StreamedRunStats
from repro.runtime.config import RunConfig, resolve_config
from repro.runtime.openloop import OpenLoopStats
from repro.sim.failures import CrashSchedule
from repro.sim.network import DelayModel
from repro.sim.simulation import EventBudgetExceeded, Simulation
from repro.workloads.arrivals import ArrivalProcess
from repro.workloads.keyed import KeyDistribution, plan_objects


def object_namespace(index: int) -> str:
    """The pid prefix of object ``index`` (``"o3/"``)."""
    return f"o{index}/"


@dataclass
class NamespaceStreamedStats:
    """Outcome of one namespace-wide closed-loop streamed run."""

    requested: int
    allocation: List[int] = field(default_factory=list)
    per_object: List[StreamedRunStats] = field(default_factory=list)
    end_time: float = 0.0
    events: int = 0
    #: True when the shared run exhausted its event budget — every
    #: object's stats then describe a prefix, not a completed run.
    truncated: bool = False

    @property
    def issued(self) -> int:
        return sum(s.issued for s in self.per_object)

    @property
    def completed(self) -> int:
        return sum(s.completed for s in self.per_object)

    @property
    def failed(self) -> int:
        return sum(s.failed for s in self.per_object)

    @property
    def writes(self) -> int:
        return sum(s.writes for s in self.per_object)

    @property
    def reads(self) -> int:
        return sum(s.reads for s in self.per_object)


@dataclass
class NamespaceOpenLoopStats:
    """Outcome of one namespace-wide open-loop run.

    ``allocation`` is the multinomial split of the operation budget over
    objects; each object's :class:`~repro.runtime.openloop.OpenLoopStats`
    carries its own admission counters and latency histograms.  The
    summed counters and merged histograms (always folded in object order,
    so they are deterministic) give the namespace-wide view.
    """

    requested: int
    allocation: List[int] = field(default_factory=list)
    per_object: List[OpenLoopStats] = field(default_factory=list)
    end_time: float = 0.0
    events: int = 0
    truncated: bool = False

    def _sum(self, attribute: str) -> int:
        return sum(getattr(s, attribute) for s in self.per_object)

    @property
    def arrived(self) -> int:
        return self._sum("arrived")

    @property
    def admitted(self) -> int:
        return self._sum("admitted")

    @property
    def issued(self) -> int:
        return self._sum("issued")

    @property
    def completed(self) -> int:
        return self._sum("completed")

    @property
    def failed(self) -> int:
        return self._sum("failed")

    @property
    def rejected(self) -> int:
        return self._sum("rejected")

    @property
    def shed_reads(self) -> int:
        return self._sum("shed_reads")

    @property
    def timed_out(self) -> int:
        return self._sum("timed_out")

    @property
    def writes(self) -> int:
        return self._sum("writes")

    @property
    def reads(self) -> int:
        return self._sum("reads")

    @property
    def queued_at_end(self) -> int:
        return self._sum("queued_at_end")

    @property
    def stall_time(self) -> float:
        return sum(s.stall_time for s in self.per_object)

    @property
    def read_latency(self) -> LatencyHistogram:
        merged = LatencyHistogram()
        for s in self.per_object:
            merged.merge(s.read_latency)
        return merged

    @property
    def write_latency(self) -> LatencyHistogram:
        merged = LatencyHistogram()
        for s in self.per_object:
            merged.merge(s.write_latency)
        return merged

    def latency(self) -> LatencyHistogram:
        return self.read_latency.merge(self.write_latency)

    @property
    def samples(self) -> Optional[Dict[str, List[float]]]:
        if not any(s.samples is not None for s in self.per_object):
            return None
        merged: Dict[str, List[float]] = {"read": [], "write": []}
        for s in self.per_object:
            if s.samples is not None:
                merged["read"].extend(s.samples["read"])
                merged["write"].extend(s.samples["write"])
        return merged


class MultiRegisterCluster:
    """N independent atomic registers multiplexed over one simulation.

    Parameters mirror :class:`~repro.runtime.cluster.RegisterCluster`; the
    extra ones are ``objects`` (how many registers this cluster hosts),
    ``recorder_factory`` (``obj_index -> HistorySink`` so each object can
    record through its own bounded sink) and ``protocol_kwargs``
    (protocol-specific constructor arguments such as CASGC's ``delta``,
    applied to every object).

    ``object_ids`` / ``namespace_size`` make the cluster a *subset view*
    of a larger logical namespace: the hosted registers carry the given
    global indices (pid namespaces, fault-leg seed derivations and driver
    plans all use the global index), while allocation and fault-victim
    draws consume their rng over ``namespace_size`` — so a fleet of
    subset clusters, each simulating a slice of the namespace, reproduces
    exactly the per-object inputs of the monolithic cluster.  Both
    default to the hosted count, which is byte-identical to the
    pre-subset behaviour.
    """

    def __init__(
        self,
        protocol: str,
        n: int,
        f: int,
        *,
        objects: int,
        num_writers: int = 1,
        num_readers: int = 1,
        seed: int = 0,
        delay_model: Optional[DelayModel] = None,
        initial_value: bytes = b"",
        keep_message_trace: bool = False,
        recorder_factory=None,
        protocol_kwargs: Optional[Dict[str, object]] = None,
        object_ids: Optional[Sequence[int]] = None,
        namespace_size: Optional[int] = None,
    ) -> None:
        if objects < 1:
            raise ValueError("need at least one object")
        if object_ids is None:
            ids = list(range(objects))
        else:
            ids = [int(g) for g in object_ids]
            if len(ids) != objects:
                raise ValueError(
                    f"object_ids names {len(ids)} objects, expected {objects}"
                )
            if len(set(ids)) != len(ids):
                raise ValueError("object_ids must be distinct")
        size = (
            int(namespace_size)
            if namespace_size is not None
            else (max(ids) + 1 if ids else objects)
        )
        if any(g < 0 or g >= size for g in ids):
            raise ValueError(
                f"object_ids must lie within [0, {size}) (namespace_size)"
            )
        self.object_ids: List[int] = ids
        self.namespace_size = size
        self.protocol = protocol
        self.n = n
        self.f = f
        self.sim = Simulation(
            seed=seed, delay_model=delay_model, keep_message_trace=keep_message_trace
        )
        self.costs = CommunicationCostTracker().attach(self.sim.network)
        self.objects: List[RegisterCluster] = []
        for j, gid in enumerate(ids):
            recorder: Optional[HistorySink] = (
                recorder_factory(j) if recorder_factory is not None else None
            )
            self.objects.append(
                make_cluster(
                    protocol,
                    n,
                    f,
                    num_writers=num_writers,
                    num_readers=num_readers,
                    initial_value=initial_value,
                    recorder=recorder,
                    sim=self.sim,
                    namespace=object_namespace(gid),
                    costs=self.costs,
                    **dict(protocol_kwargs or {}),
                )
            )
        self.protocol_name = self.objects[0].protocol_name

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.objects)

    def object(self, index: int) -> RegisterCluster:
        """The protocol instance serving object ``index``."""
        return self.objects[index]

    def server_ids_by_object(self) -> List[List[str]]:
        return [list(obj.server_ids) for obj in self.objects]

    # ------------------------------------------------------------------
    # blocking operations (shared clock: other objects progress too)
    # ------------------------------------------------------------------
    def write(
        self, index: int, value: bytes, writer: Union[int, str] = 0
    ) -> OperationRecord:
        return self.object(index).write(value, writer)

    def read(self, index: int, reader: Union[int, str] = 0) -> OperationRecord:
        return self.object(index).read(reader)

    def run(self, *, max_events: int = 10_000_000) -> None:
        """Run the shared simulation to quiescence."""
        self.sim.run(max_events=max_events)

    # ------------------------------------------------------------------
    # closed-loop streaming over the whole namespace
    # ------------------------------------------------------------------
    def run_streamed(
        self,
        *,
        operations: int,
        key_dist: Optional[KeyDistribution] = None,
        value_size: Optional[int] = None,
        mean_gap: Optional[float] = None,
        start_window: Optional[float] = None,
        seed: int = 0,
        value_prefix: str = "",
        warm_batch: Optional[int] = None,
        max_events: Optional[int] = None,
        config: Optional[RunConfig] = None,
        faults=None,
    ) -> NamespaceStreamedStats:
        """Drive ``operations`` keyed client operations through the
        namespace in one shared simulation run.

        The operation budget is split over objects by one deterministic
        multinomial draw from ``key_dist`` (uniform by default); each
        object then runs its own closed loop — one pending invocation per
        client, per-object derived seeds, per-object unique value prefixes
        (``{value_prefix}o{j}|…``) — concurrently on the shared clock.
        Everything derives from ``seed``, so the run is reproducible
        event-for-event and independent of how many worker processes a
        sharded analysis fans epochs over.

        Driver knobs may come from a shared
        :class:`~repro.runtime.config.RunConfig` (``config``); explicit
        keyword values override it per call.  ``faults`` accepts a
        :class:`~repro.workloads.faults.FaultPlan` (or its spec string)
        applied namespace-wide before the run via
        :meth:`apply_fault_plan`.
        """
        if operations < 0:
            raise ValueError("operations cannot be negative")
        cfg = resolve_config(
            config,
            value_size=value_size,
            mean_gap=mean_gap,
            start_window=start_window,
            warm_batch=warm_batch,
        )
        if faults is not None:
            self.apply_fault_plan(faults, seed=seed)
        dist = key_dist if key_dist is not None else KeyDistribution.uniform()
        # Drawn over the whole logical namespace, so a subset cluster
        # reproduces the monolithic per-object budgets and driver seeds.
        plan = plan_objects(dist, operations, self.namespace_size, seed)
        allocation = [plan.allocation[g] for g in self.object_ids]
        events_before = self.sim.events_processed

        stats = NamespaceStreamedStats(requested=operations, allocation=allocation)
        finalizers = []
        for gid, obj, ops_j in zip(self.object_ids, self.objects, allocation):
            per_obj, finalize = obj._begin_streamed(
                operations=ops_j,
                seed=plan.object_seeds[gid],
                value_prefix=f"{value_prefix}o{gid}|",
                config=cfg,
            )
            stats.per_object.append(per_obj)
            finalizers.append(finalize)

        budget = max_events if max_events is not None else max(
            10_000_000, operations * 2_000
        )
        try:
            self.sim.run(max_events=budget)
        except EventBudgetExceeded:
            stats.truncated = True
            for per_obj in stats.per_object:
                per_obj.truncated = True
            warnings.warn(
                f"namespace streamed run truncated: event budget of {budget} "
                f"exhausted after {stats.completed}/{operations} completed "
                f"operations",
                RuntimeWarning,
                stacklevel=2,
            )
        finally:
            for finalize in finalizers:
                finalize()
        stats.end_time = self.sim.now
        stats.events = self.sim.events_processed - events_before
        return stats

    # ------------------------------------------------------------------
    # open-loop traffic over the whole namespace
    # ------------------------------------------------------------------
    def run_open_loop(
        self,
        *,
        operations: int,
        arrival: ArrivalProcess,
        key_dist: Optional[KeyDistribution] = None,
        read_fraction: Optional[float] = None,
        policy: Optional[str] = None,
        queue_per_server: Optional[int] = None,
        op_timeout: Optional[float] = None,
        value_size: Optional[int] = None,
        seed: int = 0,
        value_prefix: str = "",
        warm_batch: Optional[int] = None,
        keep_samples: Optional[bool] = None,
        max_events: Optional[int] = None,
        config: Optional[RunConfig] = None,
        faults=None,
    ) -> NamespaceOpenLoopStats:
        """Drive ``operations`` open-loop arrivals through the namespace.

        The operation budget is split over objects by one deterministic
        multinomial draw from ``key_dist`` (uniform by default), and the
        arrival process is rescaled per object by its popularity
        (:meth:`~repro.workloads.arrivals.ArrivalProcess.scaled`), so the
        namespace-wide offered rate matches ``arrival`` while the hot key
        sees proportionally more traffic.  Each object arms its own
        open-loop driver (bounded admission queue, policy, timeout) with a
        derived seed, and one shared simulation run drives them all —
        reproducible event-for-event for any shard fan-out.  Trace
        arrivals cannot be rescaled and raise ``ValueError`` here.

        Driver knobs may come from a shared
        :class:`~repro.runtime.config.RunConfig` (``config``); explicit
        keyword values override it per call.  ``faults`` accepts a
        :class:`~repro.workloads.faults.FaultPlan` (or its spec string)
        applied namespace-wide before the run via
        :meth:`apply_fault_plan`.
        """
        if operations < 0:
            raise ValueError("operations cannot be negative")
        cfg = resolve_config(
            config,
            read_fraction=read_fraction,
            policy=policy,
            queue_per_server=queue_per_server,
            op_timeout=op_timeout,
            value_size=value_size,
            warm_batch=warm_batch,
            keep_samples=keep_samples,
        )
        if faults is not None:
            self.apply_fault_plan(faults, seed=seed)
        dist = key_dist if key_dist is not None else KeyDistribution.uniform()
        # Drawn over the whole logical namespace, so a subset cluster
        # reproduces the monolithic per-object budgets, arrival shares
        # and driver seeds.
        plan = plan_objects(dist, operations, self.namespace_size, seed)
        allocation = [plan.allocation[g] for g in self.object_ids]
        events_before = self.sim.events_processed

        stats = NamespaceOpenLoopStats(requested=operations, allocation=allocation)
        finalizers = []
        for gid, obj, ops_j in zip(self.object_ids, self.objects, allocation):
            per_obj, finalize = obj._begin_open_loop(
                operations=ops_j,
                arrival=arrival.scaled(plan.probabilities[gid]),
                seed=plan.object_seeds[gid],
                value_prefix=f"{value_prefix}o{gid}|",
                config=cfg,
            )
            stats.per_object.append(per_obj)
            finalizers.append(finalize)

        budget = max_events if max_events is not None else max(
            10_000_000, operations * 2_000
        )
        try:
            self.sim.run(max_events=budget)
        except EventBudgetExceeded:
            stats.truncated = True
            for per_obj in stats.per_object:
                per_obj.truncated = True
            warnings.warn(
                f"namespace open-loop run truncated: event budget of "
                f"{budget} exhausted after {stats.completed}/{operations} "
                f"completed operations",
                RuntimeWarning,
                stacklevel=2,
            )
        finally:
            for finalize in finalizers:
                finalize()
        stats.end_time = self.sim.now
        stats.events = self.sim.events_processed - events_before
        return stats

    # ------------------------------------------------------------------
    # failures
    # ------------------------------------------------------------------
    def crash_server(self, index: int, which: Union[int, str], at_time: float) -> None:
        self.object(index).crash_server(which, at_time)

    def apply_crash_schedule(self, schedule: CrashSchedule) -> None:
        """Apply a namespace-wide schedule, enforcing each object's ``f``.

        Events are routed to their object by pid prefix, so every
        register's fault budget is validated independently (crashing f
        servers of the hot object must not eat into a cold object's
        budget).
        """
        by_object: Dict[int, CrashSchedule] = {}
        known = {
            pid: j
            for j, obj in enumerate(self.objects)
            for pid in (*obj.server_ids, *obj.writer_ids, *obj.reader_ids)
        }
        for event in schedule:
            j = known.get(event.pid)
            if j is None:
                raise ValueError(
                    f"crash schedule names {event.pid!r}, which belongs to no "
                    f"object of this namespace"
                )
            by_object.setdefault(j, CrashSchedule()).add(event.pid, event.time)
        for j, sub in sorted(by_object.items()):
            self.object(j).apply_crash_schedule(sub)

    def apply_fault_plan(self, plan, *, seed: int = 0):
        """Materialise a :class:`~repro.workloads.faults.FaultPlan` on the
        whole namespace.

        Crash and slow legs apply per object (each from its own derived
        rng, each object's ``f`` budget validated independently); the
        withholding leg picks its victim objects (``objects = 0`` hits all
        of them) and its withholding servers per object; the partition leg
        cuts each object's server set along its own seeded cut.  All
        per-object adversary windows merge into **one** composite
        installed on the shared network — valid because objects never
        exchange cross-object messages — and the slow sets merge into one
        :class:`~repro.sim.network.SlowDisk` wrap instead of nesting one
        layer per object.  Returns the materialised
        :class:`~repro.workloads.faults.AppliedFaultPlan` ground truth.
        """
        from repro.sim.adversary import (
            CompositeAdversary,
            DelayAdversary,
            PartitionAdversary,
            WithholdingAdversary,
        )
        from repro.sim.network import SlowDisk
        from repro.workloads.faults import (
            AppliedFaultPlan,
            AppliedObjectFaults,
            FaultPlan,
            fault_seed,
            parse_faults,
        )

        if isinstance(plan, str):
            plan = parse_faults(plan)
        if not isinstance(plan, FaultPlan):
            raise TypeError(
                f"expected a FaultPlan or fault spec string, got {type(plan).__name__}"
            )
        # Every per-object rng derives from the object's *global* index,
        # and the withhold victim draw runs over the *logical* namespace
        # size — so a subset cluster materialises exactly the faults its
        # objects would see in the monolithic namespace (for a full
        # cluster both reduce to the hosted count).
        count = self.namespace_size
        if not plan:
            applied = AppliedFaultPlan(plan_spec=plan.spec())
            self.applied_faults = applied
            return applied

        per_object: Dict[int, Dict[str, object]] = {
            j: {} for j in range(len(self.objects))
        }
        slow_union: List[str] = []
        withheld_windows: Dict[str, tuple] = {}
        isolated_windows: Dict[str, tuple] = {}
        adversaries = []

        if plan.crash is not None and plan.crash.count:
            for j, (gid, obj) in enumerate(zip(self.object_ids, self.objects)):
                rng = np.random.default_rng(fault_seed(seed, "crash", gid))
                schedule = plan.crash.materialise(obj.server_ids, rng)
                obj.apply_crash_schedule(schedule)
                per_object[j]["crashed"] = tuple(
                    (e.pid, e.time) for e in schedule
                )
        if plan.slow is not None and plan.slow.count:
            for j, (gid, obj) in enumerate(zip(self.object_ids, self.objects)):
                rng = np.random.default_rng(fault_seed(seed, "slow", gid))
                chosen = plan.slow.choose(obj.server_ids, rng)
                per_object[j]["slow"] = chosen
                slow_union.extend(chosen)
            network = self.sim.network
            network.delay_model = SlowDisk(
                network.delay_model,
                slow_union,
                extra=plan.slow.extra,
                jitter=plan.slow.jitter,
            )
        if plan.delay_adversary is not None:
            leg = plan.delay_adversary
            adversaries.append(
                DelayAdversary(factor=leg.factor, start=leg.start, end=leg.end)
            )
        if plan.withhold is not None:
            leg = plan.withhold
            if leg.objects and leg.objects < count:
                rng = np.random.default_rng(
                    fault_seed(seed, "withhold-objects", 0)
                )
                victims = set(
                    int(i)
                    for i in rng.choice(count, size=leg.objects, replace=False)
                )
            else:
                victims = set(range(count))
            window = (leg.start, leg.end)
            for j, (gid, obj) in enumerate(zip(self.object_ids, self.objects)):
                if gid not in victims:
                    continue
                rng = np.random.default_rng(fault_seed(seed, "withhold", gid))
                withheld = leg.choose(obj.server_ids, obj.code.k, rng)
                surviving = obj.n - len(withheld)
                per_object[j]["withheld"] = withheld
                per_object[j]["withhold_window"] = window
                per_object[j]["surviving_elements"] = surviving
                per_object[j]["below_k"] = surviving < obj.code.k
                for pid in withheld:
                    withheld_windows[pid] = window
            adversaries.append(WithholdingAdversary(withheld_windows))
        if plan.partition is not None:
            leg = plan.partition
            window = (leg.start, leg.end)
            for j, (gid, obj) in enumerate(zip(self.object_ids, self.objects)):
                rng = np.random.default_rng(fault_seed(seed, "partition", gid))
                isolated = leg.choose(obj.server_ids, rng)
                per_object[j]["isolated"] = isolated
                per_object[j]["partition_window"] = window
                for pid in isolated:
                    isolated_windows[pid] = window
            adversaries.append(PartitionAdversary(isolated_windows))
        if adversaries:
            network = self.sim.network
            existing = network._adversary
            if existing is not None:
                adversaries = [existing, *adversaries]
            network.install_adversary(
                adversaries[0]
                if len(adversaries) == 1
                else CompositeAdversary(adversaries)
            )

        applied = AppliedFaultPlan(
            plan_spec=plan.spec(),
            objects=tuple(
                AppliedObjectFaults(
                    object_index=gid,
                    crashed=per_object[j].get("crashed", ()),
                    slow=per_object[j].get("slow", ()),
                    withheld=per_object[j].get("withheld", ()),
                    withhold_window=per_object[j].get("withhold_window"),
                    surviving_elements=per_object[j].get("surviving_elements"),
                    below_k=per_object[j].get("below_k", False),
                    isolated=per_object[j].get("isolated", ()),
                    partition_window=per_object[j].get("partition_window"),
                )
                for j, gid in enumerate(self.object_ids)
            ),
        )
        self.applied_faults = applied
        return applied

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def operation_cost(self, op_id: str) -> float:
        """Communication cost of any operation, whichever object served it
        (operation ids embed the namespaced client pid)."""
        return self.costs.cost_of(op_id)

    def storage_peak(self) -> float:
        """Sum of per-object storage peaks (the objects' peaks need not be
        simultaneous, so this is the worst-case provisioning bound)."""
        return sum(obj.storage_peak() for obj in self.objects)

    def storage_current(self) -> float:
        return sum(obj.storage_current() for obj in self.objects)

    def codec_stats(self) -> Dict[str, int]:
        """Namespace-wide codec counters: the per-object
        :meth:`~repro.runtime.cluster.RegisterCluster.codec_stats` summed
        key-wise (every object runs the same protocol, so the objects
        expose the same keys)."""
        totals: Dict[str, int] = {}
        for obj in self.objects:
            for key, count in obj.codec_stats().items():
                totals[key] = totals.get(key, 0) + count
        return totals

    def max_resident_records(self) -> int:
        """Peak resident records over the objects' bounded recorders (0 if
        an object records through a plain in-memory History)."""
        return max(
            (
                getattr(obj.history, "max_resident", 0)
                for obj in self.objects
            ),
            default=0,
        )

    def summary(self) -> Dict[str, object]:
        return {
            "protocol": self.protocol_name,
            "objects": len(self.objects),
            "n": self.n,
            "f": self.f,
            "storage_peak": self.storage_peak(),
            "events_processed": self.sim.events_processed,
        }
