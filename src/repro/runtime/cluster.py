"""The protocol-independent cluster façade.

Every atomic-register protocol in this repository (SODA, SODAerr, ABD, CAS,
CASGC) is exposed through a subclass of :class:`RegisterCluster`.  The
façade owns:

* the discrete-event :class:`~repro.sim.simulation.Simulation` (seeded, so
  every experiment is reproducible),
* the server, writer and reader processes,
* the :class:`~repro.consistency.history.History` of client operations,
* the communication-cost, storage-cost and latency trackers, and
* failure injection (server/client crash schedules).

Protocol subclasses provide the erasure code and the concrete process
classes; everything else (blocking operations, scheduled concurrent
operations, metrics accessors) is shared, which keeps the comparison
experiments of Table I apples-to-apples.
"""

from __future__ import annotations

import warnings
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.consistency.history import History, OperationRecord
from repro.consistency.stream import (
    CheckerBatcher,
    HistorySink,
    StreamObserver,
    iter_observers,
)
from repro.erasure.batch import (
    CachedDecoder,
    CachedEncoder,
    ReadDecodeBatcher,
    WriteEncodeBatcher,
)
from repro.erasure.mds import CodedElement, MDSCode
from repro.metrics.costs import CommunicationCostTracker, StorageTracker
from repro.metrics.latency import LatencyTracker
from repro.runtime.config import RunConfig, resolve_config
from repro.sim.failures import CrashSchedule, FailureInjector
from repro.sim.network import DelayModel, SlowDisk
from repro.sim.process import Process
from repro.sim.simulation import EventBudgetExceeded, Simulation


@dataclass
class ScheduledOperation:
    """Handle for an operation scheduled to start at a future simulated time.

    ``op_id`` is filled in when the operation is actually invoked (operation
    identifiers embed per-client sequence numbers, which are only known at
    invocation time)."""

    kind: str
    client: str
    start_time: float
    op_id: Optional[str] = None

    @property
    def started(self) -> bool:
        return self.op_id is not None


@dataclass
class StreamedRunStats:
    """Outcome of one :meth:`RegisterCluster.run_streamed` closed loop."""

    requested: int
    issued: int = 0
    completed: int = 0
    failed: int = 0
    writes: int = 0
    reads: int = 0
    end_time: float = 0.0
    events: int = 0
    #: True when the run exhausted its event budget before quiescence —
    #: the stats describe a *prefix* of the requested run, not the whole
    #: thing.  Consumers that aggregate across runs (``experiment
    #: longrun``) must treat a truncated run as an error, not a result.
    truncated: bool = False

    @property
    def in_flight_at_end(self) -> int:
        return self.issued - self.completed - self.failed


class RegisterCluster(ABC):
    """Base façade for an n-server atomic register emulation."""

    #: Human-readable protocol name, used by the comparison tables.
    protocol_name: str = "abstract"

    #: Whether this protocol's write path reads the shared encoder cache.
    #: Protocols whose writers never consult it (e.g. ABD's full-value
    #: replication) set this False so :meth:`warm_encode` does not spend a
    #: batched encode on values nothing will look up.
    warm_encoding_effective: bool = True

    def __init__(
        self,
        n: int,
        f: int,
        *,
        num_writers: int = 1,
        num_readers: int = 1,
        seed: int = 0,
        delay_model: Optional[DelayModel] = None,
        initial_value: bytes = b"",
        keep_message_trace: bool = False,
        recorder: Optional[HistorySink] = None,
        sim: Optional[Simulation] = None,
        namespace: str = "",
        costs: Optional[CommunicationCostTracker] = None,
        encoder_capacity: Optional[int] = None,
        decoder_capacity: Optional[int] = None,
        batch_writer_encodes: bool = True,
    ) -> None:
        if n < 1:
            raise ValueError("need at least one server")
        if f < 0:
            raise ValueError("f cannot be negative")
        if num_writers < 1 or num_readers < 1:
            raise ValueError("need at least one writer and one reader")
        self.n = n
        self.f = f
        self.num_writers = num_writers
        self.num_readers = num_readers
        self.initial_value = initial_value
        #: Pid prefix isolating this register's processes inside a shared
        #: simulation.  The multi-object namespace layer
        #: (:class:`repro.runtime.namespace.MultiRegisterCluster`) gives each
        #: register object a distinct prefix (``"o3/"``), so N independent
        #: protocol instances can interleave on one event queue and clock.
        self.namespace = namespace
        self._validate_parameters()

        if sim is not None:
            # Shared-simulation mode: the namespace layer owns the clock,
            # the event queue and the delay model; seed/delay_model/
            # keep_message_trace are the owner's to choose.
            self.sim = sim
        else:
            self.sim = Simulation(
                seed=seed,
                delay_model=delay_model,
                keep_message_trace=keep_message_trace,
            )
        # Clients record operations through the narrow HistorySink interface;
        # the default sink is the keep-everything History, but long workloads
        # can pass a bounded StreamingRecorder (with, e.g., the incremental
        # atomicity checker subscribed) instead.
        self.history: HistorySink = recorder if recorder is not None else History()
        # Checker batchers subscribed before the cluster existed could not
        # know the simulation's micro-task hook; bind them now so their
        # crossing tests run once per event-loop drain instead of per op.
        for observer in iter_observers(self.history):
            if isinstance(observer, CheckerBatcher) and not observer.bound:
                observer.bind(self.sim.defer)
        # One network send-listener per tracker: clusters sharing a
        # simulation must also share one tracker, or each would shadow-count
        # every other object's traffic.
        self.costs = (
            costs
            if costs is not None
            else CommunicationCostTracker().attach(self.sim.network)
        )
        self.storage = StorageTracker()
        self.failures = FailureInjector(self.sim)

        #: Optional overrides for the codec LRU bounds (None keeps the
        #: module defaults in :mod:`repro.erasure.batch`).
        self.encoder_capacity = encoder_capacity
        self.decoder_capacity = decoder_capacity

        self.code: MDSCode = self._build_code()
        # Cluster-shared memoizing encoder: dispersal-set servers encode the
        # same value for the same write, and workload drivers can pre-encode
        # whole batches through it (see warm_encode).
        self.encoder = self._build_encoder()
        # Cluster-shared memoizing decoder + per-drain batcher: readers of
        # erasure-coded protocols submit ready decodes here instead of
        # decoding inline; concurrent reads of one version become cache
        # hits and misses go through decode_many in one call per drain.
        self.decoder = self._build_decoder()
        self.decode_batcher = (
            ReadDecodeBatcher(self.decoder, self.sim.defer)
            if self.decoder is not None
            else None
        )
        # Write-side mirror: writers/dispersal servers submit their encodes
        # here; one encode_many (a fused stripe matmul) per event-loop
        # drain, flushed through the same micro-task hook — execution stays
        # event-for-event identical to eager encoding.
        self.encode_batcher = (
            WriteEncodeBatcher(self.encoder, self.sim.defer)
            if (self.encoder is not None and batch_writer_encodes)
            else None
        )
        self.initial_elements: List[CodedElement] = (
            self.encoder.encode(initial_value)
            if self.encoder is not None
            else self.code.encode(initial_value)
        )

        self.server_ids = [f"{namespace}s{i}" for i in range(n)]
        self.writer_ids = [f"{namespace}w{i}" for i in range(num_writers)]
        self.reader_ids = [f"{namespace}r{i}" for i in range(num_readers)]

        self.servers: List[Process] = []
        for i, pid in enumerate(self.server_ids):
            server = self._make_server(i, pid)
            self.sim.add_process(server)
            self.servers.append(server)
        self.writers: Dict[str, Process] = {}
        for pid in self.writer_ids:
            writer = self._make_writer(pid)
            self.sim.add_process(writer)
            self.writers[pid] = writer
        self.readers: Dict[str, Process] = {}
        for pid in self.reader_ids:
            reader = self._make_reader(pid)
            self.sim.add_process(reader)
            self.readers[pid] = reader

    # ------------------------------------------------------------------
    # protocol-specific construction
    # ------------------------------------------------------------------
    def _validate_parameters(self) -> None:
        """Subclasses refine this to enforce their own (n, f) constraints."""
        if self.f > (self.n - 1) // 2:
            raise ValueError(
                f"{type(self).__name__} requires f <= (n-1)/2, got n={self.n}, f={self.f}"
            )

    @abstractmethod
    def _build_code(self) -> MDSCode:
        """The erasure code the protocol stores data with."""

    def _build_encoder(self) -> Optional[CachedEncoder]:
        """The memoizing encoder shared by this cluster's writers/servers.

        Subclasses may override (mirroring :meth:`_build_decoder`) to tune
        capacity or disable write-side memoization entirely by returning
        ``None`` — which also disables the write-encode batcher.
        """
        if self.encoder_capacity is not None:
            return CachedEncoder(self.code, capacity=self.encoder_capacity)
        return CachedEncoder(self.code)

    def _build_decoder(self) -> Optional[CachedDecoder]:
        """The memoizing decoder shared by this cluster's readers.

        ``None`` disables read-side decode batching (protocols whose reads
        never invoke the code's decoder, e.g. ABD's full-value
        replication, override this).  SODAerr overrides it to memoize the
        errors-and-erasures decode per (tag, element-set).
        """
        if self.decoder_capacity is not None:
            return CachedDecoder(self.code, capacity=self.decoder_capacity)
        return CachedDecoder(self.code)

    @abstractmethod
    def _make_server(self, index: int, pid: str) -> Process:
        """Instantiate server ``index``."""

    @abstractmethod
    def _make_writer(self, pid: str) -> Process:
        """Instantiate a writer client."""

    @abstractmethod
    def _make_reader(self, pid: str) -> Process:
        """Instantiate a reader client."""

    # ------------------------------------------------------------------
    # process lookup helpers
    # ------------------------------------------------------------------
    def writer(self, which: Union[int, str] = 0) -> Process:
        pid = which if isinstance(which, str) else self.writer_ids[which]
        return self.writers[pid]

    def reader(self, which: Union[int, str] = 0) -> Process:
        pid = which if isinstance(which, str) else self.reader_ids[which]
        return self.readers[pid]

    def server(self, which: Union[int, str]) -> Process:
        pid = which if isinstance(which, str) else self.server_ids[which]
        return self.sim.get_process(pid)

    # ------------------------------------------------------------------
    # blocking operations (run the simulation until the operation completes)
    # ------------------------------------------------------------------
    def write(
        self, value: bytes, writer: Union[int, str] = 0, *, max_events: int = 2_000_000
    ) -> OperationRecord:
        """Perform a write and run the simulation until it completes."""
        op_id = self.writer(writer).start_write(value)
        return self.run_until_complete(op_id, max_events=max_events)

    def read(
        self, reader: Union[int, str] = 0, *, max_events: int = 2_000_000
    ) -> OperationRecord:
        """Perform a read and run the simulation until it completes."""
        op_id = self.reader(reader).start_read()
        return self.run_until_complete(op_id, max_events=max_events)

    def run_until_complete(
        self, op_id: str, *, max_events: int = 2_000_000
    ) -> OperationRecord:
        # Hold the record itself rather than re-fetching by id each check:
        # respond() mutates records in place, so this stays correct even
        # when a windowed sink evicts the completed record immediately
        # (e.g. a StreamingRecorder with a tiny window).
        record = self.history.get(op_id)
        self.sim.run_until(lambda: record.is_complete, max_events=max_events)
        return record

    # ------------------------------------------------------------------
    # scheduled (concurrent) operations
    # ------------------------------------------------------------------
    #: Delay between retries when a scheduled operation finds its client busy
    #: (clients are well-formed: one operation at a time).
    _busy_retry_delay = 0.25

    def schedule_write(
        self, at_time: float, value: bytes, writer: Union[int, str] = 0
    ) -> ScheduledOperation:
        """Schedule a write invocation at an absolute simulated time.

        If the chosen writer still has an operation in flight at that time,
        the invocation is retried shortly afterwards (clients issue one
        operation at a time, per the paper's well-formedness assumption).
        """
        client = self.writer(writer)
        handle = ScheduledOperation(kind="write", client=str(client.pid), start_time=at_time)

        def start() -> None:
            if client.is_crashed:
                return
            if client.busy:
                self.sim.schedule(self._busy_retry_delay, start, label="retry write")
                return
            handle.op_id = client.start_write(value)

        self.sim.schedule_at(at_time, start, label=f"start write @{client.pid}")
        return handle

    def schedule_read(
        self, at_time: float, reader: Union[int, str] = 0
    ) -> ScheduledOperation:
        """Schedule a read invocation at an absolute simulated time.

        Retries while the chosen reader is busy, like :meth:`schedule_write`.
        """
        client = self.reader(reader)
        handle = ScheduledOperation(kind="read", client=str(client.pid), start_time=at_time)

        def start() -> None:
            if client.is_crashed:
                return
            if client.busy:
                self.sim.schedule(self._busy_retry_delay, start, label="retry read")
                return
            handle.op_id = client.start_read()

        self.sim.schedule_at(at_time, start, label=f"start read @{client.pid}")
        return handle

    def run(self, *, max_events: int = 10_000_000, max_time: float = float("inf")) -> None:
        """Run the simulation to quiescence (all pending events processed)."""
        self.sim.run(max_events=max_events, max_time=max_time)

    def warm_encode(self, values: Sequence[bytes]) -> int:
        """Pre-encode a batch of values into the shared encoder cache.

        One wide GF(2^8) matmul (:meth:`MDSCode.encode_many`) covers the
        whole batch, so the per-write encodes during the simulation become
        cache hits.  No-op for protocols that never read the shared cache
        (see :attr:`warm_encoding_effective`).  Returns the number of
        values newly encoded.
        """
        if not self.warm_encoding_effective:
            return 0
        return self.encoder.warm(values)

    # ------------------------------------------------------------------
    # closed-loop streaming runs
    # ------------------------------------------------------------------
    def run_streamed(
        self,
        *,
        operations: int,
        value_size: Optional[int] = None,
        mean_gap: Optional[float] = None,
        start_window: Optional[float] = None,
        seed: int = 0,
        value_prefix: str = "",
        warm_batch: Optional[int] = None,
        max_events: Optional[int] = None,
        config: Optional[RunConfig] = None,
        faults=None,
    ) -> StreamedRunStats:
        """Drive ``operations`` client operations through the live cluster
        in a closed loop, with memory bounded by the client count.

        Unlike :func:`repro.workloads.generator.run_workload`, which
        schedules every operation (and pre-generates every value) up
        front, this driver keeps exactly one pending invocation per
        client: whenever a client's operation completes (or its client
        crashes), the next operation for that client is scheduled after an
        exponential think time.  Combined with a bounded
        :class:`~repro.consistency.stream.StreamingRecorder` sink and the
        online incremental checker, a million-operation *real cluster
        simulation* runs in O(clients + window) resident history — the
        engine behind ``experiment longrun`` (:mod:`repro.analysis.longrun`).

        Writers issue globally unique values ``{value_prefix}#{seq}|…``
        padded to ``value_size`` with seeded random bytes; upcoming values
        are pre-encoded into the shared encoder cache ``warm_batch`` at a
        time (one wide GF(2^8) matmul each refill).  Readers issue reads.
        The operation budget is consumed by whichever clients are alive: a
        crashed client's slot is handed to the next live client
        round-robin, so the budget drains fully while anyone survives, and
        a fully crashed client set winds the run down (fewer issued
        operations) instead of hanging.  All randomness derives from
        ``seed``, making the run reproducible event-for-event.

        Driver knobs may come from a shared :class:`RunConfig` (``config``);
        explicit keyword values override it per call.  ``faults`` accepts a
        :class:`~repro.workloads.faults.FaultPlan` (or its spec string) and
        applies it before the run via :meth:`apply_fault_plan`.
        """
        cfg = resolve_config(
            config,
            value_size=value_size,
            mean_gap=mean_gap,
            start_window=start_window,
            warm_batch=warm_batch,
        )
        if faults is not None:
            self.apply_fault_plan(faults, seed=seed)
        events_before = self.sim.events_processed
        stats, finalize = self._begin_streamed(
            operations=operations,
            seed=seed,
            value_prefix=value_prefix,
            config=cfg,
        )
        budget = max_events if max_events is not None else max(
            10_000_000, operations * 2_000
        )
        try:
            self.run(max_events=budget)
        except EventBudgetExceeded:
            # The stats describe a prefix of the run, not the whole thing.
            # Flag it loudly instead of letting a truncated run masquerade
            # as a completed one.
            stats.truncated = True
            warnings.warn(
                f"streamed run truncated: event budget of {budget} exhausted "
                f"after {stats.completed}/{operations} completed operations",
                RuntimeWarning,
                stacklevel=2,
            )
        finally:
            finalize()
        stats.events = self.sim.events_processed - events_before
        return stats

    def _begin_streamed(
        self,
        *,
        operations: int,
        value_size: Optional[int] = None,
        mean_gap: Optional[float] = None,
        start_window: Optional[float] = None,
        seed: int = 0,
        value_prefix: str = "",
        warm_batch: Optional[int] = None,
        config: Optional[RunConfig] = None,
    ):
        """Arm one closed-loop streamed run without running the simulation.

        Schedules the initial per-client invocations and subscribes the
        closed-loop driver, then returns ``(stats, finalize)``: the caller
        runs the simulation (possibly alongside other clusters sharing it —
        the multi-object namespace layer arms one driver per register
        object) and calls ``finalize()`` afterwards to detach the driver
        and seal ``stats.end_time``.
        """
        if operations < 0:
            raise ValueError("operations cannot be negative")
        cfg = resolve_config(
            config,
            value_size=value_size,
            mean_gap=mean_gap,
            start_window=start_window,
            warm_batch=warm_batch,
        )
        value_size = cfg.value_size
        mean_gap = cfg.mean_gap
        start_window = cfg.start_window
        warm_batch = cfg.warm_batch
        rng = np.random.default_rng(seed)
        stats = StreamedRunStats(requested=operations)

        clients: List[Process] = [
            *(self.writers[pid] for pid in self.writer_ids),
            *(self.readers[pid] for pid in self.reader_ids),
        ]
        by_pid = {str(client.pid): client for client in clients}
        index_of = {str(client.pid): i for i, client in enumerate(clients)}
        state = {"remaining": operations, "active": True, "value_seq": 0}
        value_queue: List[bytes] = []
        # Operations issued by THIS run and still outstanding: the sink may
        # also carry completions of externally scheduled operations, which
        # must not perturb the stats or trigger extra closed-loop issues.
        outstanding: set = set()

        def live_replacement(after: Process) -> Optional[Process]:
            """The next non-crashed client after ``after``, round-robin."""
            start = index_of[str(after.pid)]
            for shift in range(1, len(clients) + 1):
                candidate = clients[(start + shift) % len(clients)]
                if not candidate.is_crashed:
                    return candidate
            return None

        def next_value() -> bytes:
            if not value_queue:
                batch = []
                for _ in range(max(1, warm_batch)):
                    header = f"{value_prefix}#{state['value_seq']}|".encode()
                    state["value_seq"] += 1
                    filler = b""
                    if value_size > len(header):
                        filler = rng.integers(
                            0, 256, size=value_size - len(header), dtype=np.uint8
                        ).tobytes()
                    batch.append(header + filler)
                self.warm_encode(batch)
                value_queue.extend(reversed(batch))
            return value_queue.pop()

        def issue(client: Process) -> None:
            if not state["active"] or state["remaining"] <= 0:
                return
            if client.is_crashed:
                # Hand the budget slot to a surviving client instead of
                # abandoning it — the budget is consumed by whichever
                # clients are alive; only a fully crashed client set
                # leaves it unconsumed.
                replacement = live_replacement(client)
                if replacement is not None:
                    self.sim.schedule(
                        self._busy_retry_delay,
                        lambda: issue(replacement),
                        label="reassign streamed op",
                    )
                return
            if client.busy:
                self.sim.schedule(
                    self._busy_retry_delay,
                    lambda: issue(client),
                    label="retry streamed op",
                )
                return
            state["remaining"] -= 1
            if str(client.pid) in self.writers:
                op_id = client.start_write(next_value())
                stats.writes += 1
            else:
                op_id = client.start_read()
                stats.reads += 1
            outstanding.add(op_id)
            stats.issued += 1

        cluster = self

        class _ClosedLoopDriver(StreamObserver):
            def _advance(self, record: OperationRecord, failed: bool) -> None:
                if not state["active"]:
                    return
                if record.op_id not in outstanding:
                    return  # not one of this run's operations
                outstanding.discard(record.op_id)
                if failed:
                    stats.failed += 1
                else:
                    stats.completed += 1
                finished_at = (
                    record.responded_at
                    if record.responded_at is not None
                    else cluster.sim.now
                )
                stats.end_time = max(stats.end_time, finished_at)
                client = by_pid.get(record.client)
                if client is None or state["remaining"] <= 0:
                    return
                if client.is_crashed:
                    client = live_replacement(client)
                    if client is None:
                        return
                gap = float(rng.exponential(mean_gap)) if mean_gap else 0.0
                next_client = client
                cluster.sim.schedule(
                    gap, lambda: issue(next_client), label="next streamed op"
                )

            def on_complete(self, record: OperationRecord) -> None:
                self._advance(record, failed=False)

            def on_failed(self, record: OperationRecord) -> None:
                self._advance(record, failed=True)

        driver = self.history.subscribe(_ClosedLoopDriver())
        for index, client in enumerate(clients):
            if index >= operations:
                break
            at = float(rng.uniform(0.0, start_window)) if start_window else 0.0
            self.sim.schedule(
                at, (lambda c: lambda: issue(c))(client), label="start streamed op"
            )

        def finalize() -> None:
            state["active"] = False
            self.history.unsubscribe(driver)
            stats.end_time = max(stats.end_time, self.sim.now)

        return stats, finalize

    # ------------------------------------------------------------------
    # open-loop runs
    # ------------------------------------------------------------------
    def run_open_loop(
        self,
        *,
        operations: int,
        arrival,
        read_fraction: Optional[float] = None,
        policy: Optional[str] = None,
        queue_per_server: Optional[int] = None,
        op_timeout: Optional[float] = None,
        value_size: Optional[int] = None,
        seed: int = 0,
        value_prefix: str = "",
        warm_batch: Optional[int] = None,
        keep_samples: Optional[bool] = None,
        max_events: Optional[int] = None,
        config: Optional[RunConfig] = None,
        faults=None,
    ):
        """Drive ``operations`` arrivals through the cluster open-loop.

        ``arrival`` is an :class:`~repro.workloads.arrivals.ArrivalProcess`
        fixing the invocation schedule up front — load does not self-limit
        the way the closed loop does.  Saturation is absorbed by a bounded
        admission queue (``queue_per_server * n`` entries) under the
        configured overflow ``policy`` (``drop`` / ``shed-reads`` /
        ``backpressure``) with ``op_timeout`` queue waits counted as
        failures; completion latency is measured from arrival (queueing
        included) into mergeable per-kind latency histograms.  See
        :mod:`repro.runtime.openloop` for the full mechanics.  Returns
        :class:`~repro.runtime.openloop.OpenLoopStats`.

        Driver knobs may come from a shared :class:`RunConfig` (``config``);
        explicit keyword values override it per call.  ``faults`` accepts a
        :class:`~repro.workloads.faults.FaultPlan` (or its spec string) and
        applies it before the run via :meth:`apply_fault_plan`.
        """
        from repro.runtime.openloop import begin_open_loop

        cfg = resolve_config(
            config,
            read_fraction=read_fraction,
            policy=policy,
            queue_per_server=queue_per_server,
            op_timeout=op_timeout,
            value_size=value_size,
            warm_batch=warm_batch,
            keep_samples=keep_samples,
        )
        if faults is not None:
            self.apply_fault_plan(faults, seed=seed)
        events_before = self.sim.events_processed
        stats, finalize = begin_open_loop(
            self,
            operations=operations,
            arrival=arrival,
            seed=seed,
            value_prefix=value_prefix,
            config=cfg,
        )
        budget = max_events if max_events is not None else max(
            10_000_000, operations * 2_000
        )
        try:
            self.run(max_events=budget)
        except EventBudgetExceeded:
            stats.truncated = True
            warnings.warn(
                f"open-loop run truncated: event budget of {budget} "
                f"exhausted after {stats.completed}/{operations} completed "
                f"operations",
                RuntimeWarning,
                stacklevel=2,
            )
        finally:
            finalize()
        stats.events = self.sim.events_processed - events_before
        return stats

    def _begin_open_loop(self, **kwargs):
        """Arm one open-loop run without running the simulation.

        Thin delegate to :func:`repro.runtime.openloop.begin_open_loop`
        (same ``(stats, finalize)`` contract as :meth:`_begin_streamed`),
        used by the namespace layer to arm one driver per object.
        """
        from repro.runtime.openloop import begin_open_loop

        return begin_open_loop(self, **kwargs)

    # ------------------------------------------------------------------
    # failures
    # ------------------------------------------------------------------
    def crash_server(self, which: Union[int, str], at_time: float) -> None:
        pid = which if isinstance(which, str) else self.server_ids[which]
        self.failures.crash_at(pid, at_time)

    def crash_client(self, pid: str, at_time: float) -> None:
        if pid not in self.writers and pid not in self.readers:
            raise ValueError(f"unknown client {pid!r}")
        self.failures.crash_at(pid, at_time)

    def apply_crash_schedule(self, schedule: CrashSchedule) -> None:
        if len([e for e in schedule if e.pid in self.server_ids]) > self.f:
            raise ValueError(
                f"crash schedule kills more than f={self.f} servers; the "
                f"protocol's guarantees would not apply"
            )
        self.failures.apply(schedule)

    def apply_fault_plan(self, plan, *, seed: int = 0, object_index: int = 0):
        """Materialise a :class:`~repro.workloads.faults.FaultPlan` here.

        ``plan`` may be a plan or its spec string.  Each leg derives its
        own rng from ``(seed, leg name, object_index)`` via
        :func:`~repro.workloads.faults.fault_seed`, so materialisation is a
        pure function of the seed — byte-identical under re-derivation and
        epoch sharding.  Crash legs go through the usual ``f``-budget
        check, slow legs wrap the network delay model in
        :class:`~repro.sim.network.SlowDisk`, and the adversarial legs
        install (or extend) a message adversary on the network.  Returns
        the materialised ground truth as an
        :class:`~repro.workloads.faults.AppliedFaultPlan`.
        """
        # Imported lazily: the workloads package imports this module.
        from repro.sim.adversary import (
            CompositeAdversary,
            DelayAdversary,
            PartitionAdversary,
            WithholdingAdversary,
        )
        from repro.workloads.faults import (
            AppliedFaultPlan,
            AppliedObjectFaults,
            FaultPlan,
            fault_seed,
            parse_faults,
        )

        if isinstance(plan, str):
            plan = parse_faults(plan)
        if not isinstance(plan, FaultPlan):
            raise TypeError(
                f"expected a FaultPlan or fault spec string, got {type(plan).__name__}"
            )
        if not plan:
            applied = AppliedFaultPlan(plan_spec=plan.spec())
            self.applied_faults = applied
            return applied

        j = object_index
        crashed: tuple = ()
        slow: tuple = ()
        withheld: tuple = ()
        withhold_window = None
        surviving = None
        below_k = False
        isolated: tuple = ()
        partition_window = None
        adversaries = []
        k = self.code.k

        if plan.crash is not None and plan.crash.count:
            rng = np.random.default_rng(fault_seed(seed, "crash", j))
            schedule = plan.crash.materialise(self.server_ids, rng)
            self.apply_crash_schedule(schedule)
            crashed = tuple((e.pid, e.time) for e in schedule)
        if plan.slow is not None and plan.slow.count:
            rng = np.random.default_rng(fault_seed(seed, "slow", j))
            slow = plan.slow.choose(self.server_ids, rng)
            network = self.sim.network
            network.delay_model = SlowDisk(
                network.delay_model,
                slow,
                extra=plan.slow.extra,
                jitter=plan.slow.jitter,
            )
        if plan.delay_adversary is not None:
            leg = plan.delay_adversary
            adversaries.append(
                DelayAdversary(factor=leg.factor, start=leg.start, end=leg.end)
            )
        if plan.withhold is not None:
            leg = plan.withhold
            rng = np.random.default_rng(fault_seed(seed, "withhold", j))
            withheld = leg.choose(self.server_ids, k, rng)
            withhold_window = (leg.start, leg.end)
            surviving = self.n - len(withheld)
            below_k = surviving < k
            adversaries.append(
                WithholdingAdversary({pid: withhold_window for pid in withheld})
            )
        if plan.partition is not None:
            leg = plan.partition
            rng = np.random.default_rng(fault_seed(seed, "partition", j))
            isolated = leg.choose(self.server_ids, rng)
            partition_window = (leg.start, leg.end)
            adversaries.append(
                PartitionAdversary({pid: partition_window for pid in isolated})
            )
        if adversaries:
            network = self.sim.network
            existing = network._adversary
            if existing is not None:
                adversaries = [existing, *adversaries]
            network.install_adversary(
                adversaries[0]
                if len(adversaries) == 1
                else CompositeAdversary(adversaries)
            )

        applied = AppliedFaultPlan(
            plan_spec=plan.spec(),
            objects=(
                AppliedObjectFaults(
                    object_index=j,
                    crashed=crashed,
                    slow=slow,
                    withheld=withheld,
                    withhold_window=withhold_window,
                    surviving_elements=surviving,
                    below_k=below_k,
                    isolated=isolated,
                    partition_window=partition_window,
                ),
            ),
        )
        self.applied_faults = applied
        return applied

    # ------------------------------------------------------------------
    # metrics accessors
    # ------------------------------------------------------------------
    def operation_cost(self, op_id: str) -> float:
        """Communication cost (in value units) attributed to an operation."""
        return self.costs.cost_of(op_id)

    def storage_peak(self) -> float:
        """Worst-case total storage cost observed so far (in value units)."""
        return self.storage.peak()

    def storage_current(self) -> float:
        return self.storage.current_total

    def codec_stats(self) -> Dict[str, int]:
        """Hit/miss/flush counters of the codec layer, flattened.

        Keys are ``encoder_*``/``decoder_*`` (hits, misses, entries) and
        ``encode_batcher_*``/``decode_batcher_*`` (submitted, flushes);
        components the protocol does not use are simply absent.
        """
        stats: Dict[str, int] = {}
        for prefix, component in (
            ("encoder", self.encoder),
            ("decoder", self.decoder),
            ("encode_batcher", self.encode_batcher),
            ("decode_batcher", self.decode_batcher),
        ):
            if component is not None:
                for key, count in component.stats().items():
                    stats[f"{prefix}_{key}"] = count
        return stats

    def full_history(self) -> History:
        """The in-memory history, for analyses that need every operation.

        Raises a descriptive error when the cluster records through a
        bounded streaming sink (whole-history analyses are exactly what
        streaming mode trades away; use stream observers instead).
        """
        if not isinstance(self.history, History):
            raise TypeError(
                f"{type(self).__name__} records through a "
                f"{type(self.history).__name__}; whole-history analyses need "
                f"the in-memory History sink (the default) — subscribe a "
                f"stream observer for bounded-memory runs instead"
            )
        return self.history

    def latency_tracker(self) -> LatencyTracker:
        tracker = LatencyTracker()
        tracker.record_operations(self.full_history().operations())
        return tracker

    def summary(self) -> Dict[str, object]:
        """A compact dictionary of headline metrics for reports."""
        history = self.full_history()
        writes = [op for op in history.writes() if op.is_complete]
        reads = [op for op in history.reads() if op.is_complete]
        write_costs = [self.operation_cost(op.op_id) for op in writes]
        read_costs = [self.operation_cost(op.op_id) for op in reads]
        return {
            "protocol": self.protocol_name,
            "n": self.n,
            "f": self.f,
            "k": self.code.k,
            "completed_writes": len(writes),
            "completed_reads": len(reads),
            "max_write_cost": max(write_costs, default=0.0),
            "max_read_cost": max(read_costs, default=0.0),
            "storage_peak": self.storage_peak(),
        }
