"""The protocol-independent cluster façade.

Every atomic-register protocol in this repository (SODA, SODAerr, ABD, CAS,
CASGC) is exposed through a subclass of :class:`RegisterCluster`.  The
façade owns:

* the discrete-event :class:`~repro.sim.simulation.Simulation` (seeded, so
  every experiment is reproducible),
* the server, writer and reader processes,
* the :class:`~repro.consistency.history.History` of client operations,
* the communication-cost, storage-cost and latency trackers, and
* failure injection (server/client crash schedules).

Protocol subclasses provide the erasure code and the concrete process
classes; everything else (blocking operations, scheduled concurrent
operations, metrics accessors) is shared, which keeps the comparison
experiments of Table I apples-to-apples.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.consistency.history import History, OperationRecord
from repro.consistency.stream import HistorySink
from repro.erasure.batch import CachedEncoder
from repro.erasure.mds import CodedElement, MDSCode
from repro.metrics.costs import CommunicationCostTracker, StorageTracker
from repro.metrics.latency import LatencyTracker
from repro.sim.failures import CrashSchedule, FailureInjector
from repro.sim.network import DelayModel
from repro.sim.process import Process
from repro.sim.simulation import Simulation


@dataclass
class ScheduledOperation:
    """Handle for an operation scheduled to start at a future simulated time.

    ``op_id`` is filled in when the operation is actually invoked (operation
    identifiers embed per-client sequence numbers, which are only known at
    invocation time)."""

    kind: str
    client: str
    start_time: float
    op_id: Optional[str] = None

    @property
    def started(self) -> bool:
        return self.op_id is not None


class RegisterCluster(ABC):
    """Base façade for an n-server atomic register emulation."""

    #: Human-readable protocol name, used by the comparison tables.
    protocol_name: str = "abstract"

    #: Whether this protocol's write path reads the shared encoder cache.
    #: Protocols whose writers never consult it (e.g. ABD's full-value
    #: replication) set this False so :meth:`warm_encode` does not spend a
    #: batched encode on values nothing will look up.
    warm_encoding_effective: bool = True

    def __init__(
        self,
        n: int,
        f: int,
        *,
        num_writers: int = 1,
        num_readers: int = 1,
        seed: int = 0,
        delay_model: Optional[DelayModel] = None,
        initial_value: bytes = b"",
        keep_message_trace: bool = False,
        recorder: Optional[HistorySink] = None,
    ) -> None:
        if n < 1:
            raise ValueError("need at least one server")
        if f < 0:
            raise ValueError("f cannot be negative")
        if num_writers < 1 or num_readers < 1:
            raise ValueError("need at least one writer and one reader")
        self.n = n
        self.f = f
        self.num_writers = num_writers
        self.num_readers = num_readers
        self.initial_value = initial_value
        self._validate_parameters()

        self.sim = Simulation(
            seed=seed, delay_model=delay_model, keep_message_trace=keep_message_trace
        )
        # Clients record operations through the narrow HistorySink interface;
        # the default sink is the keep-everything History, but long workloads
        # can pass a bounded StreamingRecorder (with, e.g., the incremental
        # atomicity checker subscribed) instead.
        self.history: HistorySink = recorder if recorder is not None else History()
        self.costs = CommunicationCostTracker().attach(self.sim.network)
        self.storage = StorageTracker()
        self.failures = FailureInjector(self.sim)

        self.code: MDSCode = self._build_code()
        # Cluster-shared memoizing encoder: dispersal-set servers encode the
        # same value for the same write, and workload drivers can pre-encode
        # whole batches through it (see warm_encode).
        self.encoder = CachedEncoder(self.code)
        self.initial_elements: List[CodedElement] = self.encoder.encode(initial_value)

        self.server_ids = [f"s{i}" for i in range(n)]
        self.writer_ids = [f"w{i}" for i in range(num_writers)]
        self.reader_ids = [f"r{i}" for i in range(num_readers)]

        self.servers: List[Process] = []
        for i, pid in enumerate(self.server_ids):
            server = self._make_server(i, pid)
            self.sim.add_process(server)
            self.servers.append(server)
        self.writers: Dict[str, Process] = {}
        for pid in self.writer_ids:
            writer = self._make_writer(pid)
            self.sim.add_process(writer)
            self.writers[pid] = writer
        self.readers: Dict[str, Process] = {}
        for pid in self.reader_ids:
            reader = self._make_reader(pid)
            self.sim.add_process(reader)
            self.readers[pid] = reader

    # ------------------------------------------------------------------
    # protocol-specific construction
    # ------------------------------------------------------------------
    def _validate_parameters(self) -> None:
        """Subclasses refine this to enforce their own (n, f) constraints."""
        if self.f > (self.n - 1) // 2:
            raise ValueError(
                f"{type(self).__name__} requires f <= (n-1)/2, got n={self.n}, f={self.f}"
            )

    @abstractmethod
    def _build_code(self) -> MDSCode:
        """The erasure code the protocol stores data with."""

    @abstractmethod
    def _make_server(self, index: int, pid: str) -> Process:
        """Instantiate server ``index``."""

    @abstractmethod
    def _make_writer(self, pid: str) -> Process:
        """Instantiate a writer client."""

    @abstractmethod
    def _make_reader(self, pid: str) -> Process:
        """Instantiate a reader client."""

    # ------------------------------------------------------------------
    # process lookup helpers
    # ------------------------------------------------------------------
    def writer(self, which: Union[int, str] = 0) -> Process:
        pid = which if isinstance(which, str) else self.writer_ids[which]
        return self.writers[pid]

    def reader(self, which: Union[int, str] = 0) -> Process:
        pid = which if isinstance(which, str) else self.reader_ids[which]
        return self.readers[pid]

    def server(self, which: Union[int, str]) -> Process:
        pid = which if isinstance(which, str) else self.server_ids[which]
        return self.sim.get_process(pid)

    # ------------------------------------------------------------------
    # blocking operations (run the simulation until the operation completes)
    # ------------------------------------------------------------------
    def write(
        self, value: bytes, writer: Union[int, str] = 0, *, max_events: int = 2_000_000
    ) -> OperationRecord:
        """Perform a write and run the simulation until it completes."""
        op_id = self.writer(writer).start_write(value)
        return self.run_until_complete(op_id, max_events=max_events)

    def read(
        self, reader: Union[int, str] = 0, *, max_events: int = 2_000_000
    ) -> OperationRecord:
        """Perform a read and run the simulation until it completes."""
        op_id = self.reader(reader).start_read()
        return self.run_until_complete(op_id, max_events=max_events)

    def run_until_complete(
        self, op_id: str, *, max_events: int = 2_000_000
    ) -> OperationRecord:
        # Hold the record itself rather than re-fetching by id each check:
        # respond() mutates records in place, so this stays correct even
        # when a windowed sink evicts the completed record immediately
        # (e.g. a StreamingRecorder with a tiny window).
        record = self.history.get(op_id)
        self.sim.run_until(lambda: record.is_complete, max_events=max_events)
        return record

    # ------------------------------------------------------------------
    # scheduled (concurrent) operations
    # ------------------------------------------------------------------
    #: Delay between retries when a scheduled operation finds its client busy
    #: (clients are well-formed: one operation at a time).
    _busy_retry_delay = 0.25

    def schedule_write(
        self, at_time: float, value: bytes, writer: Union[int, str] = 0
    ) -> ScheduledOperation:
        """Schedule a write invocation at an absolute simulated time.

        If the chosen writer still has an operation in flight at that time,
        the invocation is retried shortly afterwards (clients issue one
        operation at a time, per the paper's well-formedness assumption).
        """
        client = self.writer(writer)
        handle = ScheduledOperation(kind="write", client=str(client.pid), start_time=at_time)

        def start() -> None:
            if client.is_crashed:
                return
            if client.busy:
                self.sim.schedule(self._busy_retry_delay, start, label="retry write")
                return
            handle.op_id = client.start_write(value)

        self.sim.schedule_at(at_time, start, label=f"start write @{client.pid}")
        return handle

    def schedule_read(
        self, at_time: float, reader: Union[int, str] = 0
    ) -> ScheduledOperation:
        """Schedule a read invocation at an absolute simulated time.

        Retries while the chosen reader is busy, like :meth:`schedule_write`.
        """
        client = self.reader(reader)
        handle = ScheduledOperation(kind="read", client=str(client.pid), start_time=at_time)

        def start() -> None:
            if client.is_crashed:
                return
            if client.busy:
                self.sim.schedule(self._busy_retry_delay, start, label="retry read")
                return
            handle.op_id = client.start_read()

        self.sim.schedule_at(at_time, start, label=f"start read @{client.pid}")
        return handle

    def run(self, *, max_events: int = 10_000_000, max_time: float = float("inf")) -> None:
        """Run the simulation to quiescence (all pending events processed)."""
        self.sim.run(max_events=max_events, max_time=max_time)

    def warm_encode(self, values: Sequence[bytes]) -> int:
        """Pre-encode a batch of values into the shared encoder cache.

        One wide GF(2^8) matmul (:meth:`MDSCode.encode_many`) covers the
        whole batch, so the per-write encodes during the simulation become
        cache hits.  No-op for protocols that never read the shared cache
        (see :attr:`warm_encoding_effective`).  Returns the number of
        values newly encoded.
        """
        if not self.warm_encoding_effective:
            return 0
        return self.encoder.warm(values)

    # ------------------------------------------------------------------
    # failures
    # ------------------------------------------------------------------
    def crash_server(self, which: Union[int, str], at_time: float) -> None:
        pid = which if isinstance(which, str) else self.server_ids[which]
        self.failures.crash_at(pid, at_time)

    def crash_client(self, pid: str, at_time: float) -> None:
        if pid not in self.writers and pid not in self.readers:
            raise ValueError(f"unknown client {pid!r}")
        self.failures.crash_at(pid, at_time)

    def apply_crash_schedule(self, schedule: CrashSchedule) -> None:
        if len([e for e in schedule if e.pid in self.server_ids]) > self.f:
            raise ValueError(
                f"crash schedule kills more than f={self.f} servers; the "
                f"protocol's guarantees would not apply"
            )
        self.failures.apply(schedule)

    # ------------------------------------------------------------------
    # metrics accessors
    # ------------------------------------------------------------------
    def operation_cost(self, op_id: str) -> float:
        """Communication cost (in value units) attributed to an operation."""
        return self.costs.cost_of(op_id)

    def storage_peak(self) -> float:
        """Worst-case total storage cost observed so far (in value units)."""
        return self.storage.peak()

    def storage_current(self) -> float:
        return self.storage.current_total

    def full_history(self) -> History:
        """The in-memory history, for analyses that need every operation.

        Raises a descriptive error when the cluster records through a
        bounded streaming sink (whole-history analyses are exactly what
        streaming mode trades away; use stream observers instead).
        """
        if not isinstance(self.history, History):
            raise TypeError(
                f"{type(self).__name__} records through a "
                f"{type(self.history).__name__}; whole-history analyses need "
                f"the in-memory History sink (the default) — subscribe a "
                f"stream observer for bounded-memory runs instead"
            )
        return self.history

    def latency_tracker(self) -> LatencyTracker:
        tracker = LatencyTracker()
        tracker.record_operations(self.full_history().operations())
        return tracker

    def summary(self) -> Dict[str, object]:
        """A compact dictionary of headline metrics for reports."""
        history = self.full_history()
        writes = [op for op in history.writes() if op.is_complete]
        reads = [op for op in history.reads() if op.is_complete]
        write_costs = [self.operation_cost(op.op_id) for op in writes]
        read_costs = [self.operation_cost(op.op_id) for op in reads]
        return {
            "protocol": self.protocol_name,
            "n": self.n,
            "f": self.f,
            "k": self.code.k,
            "completed_writes": len(writes),
            "completed_reads": len(reads),
            "max_write_cost": max(write_costs, default=0.0),
            "max_read_cost": max(read_costs, default=0.0),
            "storage_peak": self.storage_peak(),
        }
