"""Fleet cells: one namespace partition simulated in one OS process.

The paper's registers are independent objects, so a namespace run
factorises: object ``g``'s event stream depends only on its own derived
seeds, never on which process — or which *simulation* — hosts it.  Fleet
mode exploits exactly that.  A namespace of ``N`` objects is split into
``P`` partitions (:func:`repro.workloads.keyed.partition_objects`), and
each **cell** — one ``(epoch, partition)`` pair — runs in its own spawned
pool worker, simulating its objects *sequentially, each on its own fresh
simulation*:

* the driver plan (operation split, per-object driver seeds, arrival
  shares) is drawn over the whole logical namespace via
  :func:`repro.workloads.keyed.plan_objects`, so every object receives
  the same budget and driver seed in every partitioning;
* each object's simulation seed is :func:`fleet_object_seed` — a pure
  function of ``(epoch_seed, object)``, in the style of
  :func:`repro.workloads.faults.fault_seed` — so its event stream never
  depends on which cell hosts it;
* fault legs and audit clients derive from the object's *global* index
  and the withhold victim draw runs over the logical namespace size
  (:meth:`~repro.runtime.namespace.MultiRegisterCluster.apply_fault_plan`
  with ``object_ids``/``namespace_size``), reproducing the monolithic
  namespace's ground truth per object.

The result: every per-object payload a cell streams back is
**byte-identical for any ``--fleet P``** — partitioning is purely a
scheduling decision — which is what lets the analysis layer
(:mod:`repro.analysis.fleet`) merge cells into artefacts that diff clean
across every ``--fleet``/``--jobs``/``--checker-workers`` combination.

Each cell also reports its own CPU time (:func:`time.process_time`
around the whole cell) and peak RSS: on a machine with at least ``P``
cores the fleet's wall-clock per epoch is the *maximum* of its cells'
CPU times, so the analysis layer can report the all-core sustained
throughput capacity from any host.

Unlike the namespace's shared-clock mode, objects of a fleet cell do
**not** interleave on one timeline — fleet trades the shared clock for
process parallelism, which is sound for throughput/latency/detection
experiments precisely because objects never exchange messages.
"""

from __future__ import annotations

import hashlib
import time
from typing import Dict, List, Tuple

from repro.consistency.multiplex import ObjectCheckerMux
from repro.runtime.audit import AuditConfig, AuditPool
from repro.runtime.namespace import MultiRegisterCluster, object_namespace
from repro.workloads.arrivals import parse_arrival
from repro.workloads.faults import fault_seed
from repro.workloads.keyed import parse_key_dist


def fleet_object_seed(epoch_seed: int, object_index: int) -> int:
    """The simulation seed of one fleet object: a stable hash of
    ``(epoch_seed, object)`` — same construction as
    :func:`repro.analysis.sweep.derive_seed` /
    :func:`repro.workloads.faults.fault_seed`, under its own tag so fleet
    simulations stay decorrelated from every other derived stream."""
    digest = hashlib.sha256(
        f"fleet:{epoch_seed}:object:{object_index}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "little") % (2**63 - 1)


def _require_complete(stats, context: str) -> None:
    """Same policy as the longrun engine: a truncated run describes a
    prefix of the requested workload and must abort the analysis."""
    if getattr(stats, "truncated", False):
        raise RuntimeError(
            f"{context} was truncated by its event budget "
            f"({stats.completed} operations completed); rerun with a larger "
            f"max_events instead of aggregating a partial cell"
        )


def _make_subset_cluster(
    payload: Dict[str, object], gid: int, recorder_factory=None
) -> MultiRegisterCluster:
    """One object of the logical namespace on its own fresh simulation."""
    return MultiRegisterCluster(
        payload["protocol"],
        payload["n"],
        payload["f"],
        objects=1,
        num_writers=payload["num_writers"],
        num_readers=payload["num_readers"],
        seed=fleet_object_seed(payload["epoch_seed"], gid),
        initial_value=payload["marker"],
        recorder_factory=recorder_factory,
        protocol_kwargs=dict(payload["cluster_kwargs"]),
        object_ids=[gid],
        namespace_size=payload["namespace_size"],
    )


def _closed_loop_object(payload: Dict[str, object], gid: int) -> Dict[str, object]:
    """One closed-loop fleet object: mirrors one object's slice of
    :func:`repro.analysis.longrun.multiobj_epoch_point`."""
    epoch = payload["epoch"]
    mux = ObjectCheckerMux(
        1,
        window=payload["window"],
        frontier_limit=payload["frontier_limit"],
        initial_value=payload["marker"],
        workers=payload["checker_workers"],
    )
    cluster = _make_subset_cluster(payload, gid, recorder_factory=mux.recorder)
    if payload["faults_spec"] != "none":
        cluster.apply_fault_plan(payload["faults_spec"], seed=payload["epoch_seed"])
    stats = cluster.run_streamed(
        operations=payload["ops"],
        key_dist=parse_key_dist(payload["key_dist_spec"]),
        value_size=payload["value_size"],
        mean_gap=payload["mean_gap"],
        seed=payload["epoch_seed"] + 1,
        value_prefix=f"e{epoch}|",
        max_events=payload["max_events"],
    )
    _require_complete(stats, f"fleet epoch {epoch} object {gid}")
    mux.finish()
    verdict = mux.shard_verdict(epoch, 0)
    per_obj = stats.per_object[0]
    return {
        "object": gid,
        "allocated": stats.allocation[0],
        "issued": per_obj.issued,
        "completed": per_obj.completed,
        "failed": per_obj.failed,
        "writes": per_obj.writes,
        "reads": per_obj.reads,
        "distinct_writes": sum(
            1 for s in verdict.summaries if s.has_write and not s.initial
        ),
        "end_time": stats.end_time,
        "events": stats.events,
        "max_resident": mux.recorders[0].max_resident,
        "evicted": mux.recorders[0].evicted_count,
        "checker_ok": mux.object_ok(0),
        "verdict": verdict,
    }


def _open_loop_object(payload: Dict[str, object], gid: int) -> Dict[str, object]:
    """One open-loop fleet object: mirrors one object's slice of
    :func:`repro.analysis.openloop.openloop_epoch_point` — the object's
    arrival process is the namespace process scaled by its popularity
    share, exactly as in the monolithic namespace driver."""
    epoch = payload["epoch"]
    cluster = _make_subset_cluster(payload, gid)
    if payload["faults_spec"] != "none":
        cluster.apply_fault_plan(payload["faults_spec"], seed=payload["epoch_seed"])
    stats = cluster.run_open_loop(
        operations=payload["ops"],
        arrival=parse_arrival(payload["arrival_spec"]),
        key_dist=parse_key_dist(payload["key_dist_spec"]),
        read_fraction=payload["read_fraction"],
        policy=payload["policy"],
        queue_per_server=payload["queue_per_server"],
        op_timeout=payload["op_timeout"],
        value_size=payload["value_size"],
        seed=payload["epoch_seed"] + 1,
        value_prefix=f"e{epoch}|",
        keep_samples=False,
        max_events=payload["max_events"],
    )
    _require_complete(stats, f"fleet epoch {epoch} object {gid}")
    per_obj = stats.per_object[0]
    return {
        "object": gid,
        "allocated": stats.allocation[0],
        "arrived": per_obj.arrived,
        "admitted": per_obj.admitted,
        "issued": per_obj.issued,
        "completed": per_obj.completed,
        "failed": per_obj.failed,
        "rejected": per_obj.rejected,
        "shed_reads": per_obj.shed_reads,
        "timed_out": per_obj.timed_out,
        "writes": per_obj.writes,
        "reads": per_obj.reads,
        "queued_at_end": per_obj.queued_at_end,
        "stall_time": float(per_obj.stall_time),
        "end_time": float(stats.end_time),
        "events": stats.events,
        "read_latency": per_obj.read_latency,
        "write_latency": per_obj.write_latency,
    }


def _adversary_object(payload: Dict[str, object], gid: int) -> Dict[str, object]:
    """One adversarial fleet object: faults + audit + stall detection,
    mirroring one object's slice of
    :func:`repro.analysis.adversary.adversary_epoch_point`."""
    # Lazy: repro.analysis imports this package at its own import time.
    from repro.analysis.adversary import _StallTap

    epoch = payload["epoch"]
    epoch_seed = payload["epoch_seed"]
    mux = ObjectCheckerMux(
        1,
        window=payload["window"],
        frontier_limit=payload["frontier_limit"],
        initial_value=payload["marker"],
        workers=payload["checker_workers"],
    )
    tap = mux.recorders[0].subscribe(_StallTap(payload["stall_threshold"]))
    cluster = _make_subset_cluster(payload, gid, recorder_factory=mux.recorder)
    applied = cluster.apply_fault_plan(payload["faults_spec"], seed=epoch_seed)
    obj = cluster.objects[0]
    pool = AuditPool(
        cluster.sim,
        [(gid, object_namespace(gid), obj.server_ids)],
        k=obj.code.k,
        config=AuditConfig(
            sample=payload["audit_sample"],
            interval=payload["audit_interval"],
            timeout=min(2.0, payload["audit_interval"]),
            confirm=payload["audit_confirm"],
            rounds=payload["audit_rounds"],
            start=payload["audit_start"],
        ),
        seeds=[fault_seed(epoch_seed, "audit", gid)],
    )
    pool.start()
    stats = cluster.run_streamed(
        operations=payload["ops"],
        key_dist=parse_key_dist(payload["key_dist_spec"]),
        value_size=payload["value_size"],
        mean_gap=payload["mean_gap"],
        seed=epoch_seed + 1,
        value_prefix=f"e{epoch}|",
        max_events=payload["max_events"],
    )
    _require_complete(stats, f"fleet adversary epoch {epoch} object {gid}")
    mux.finish()
    tap.finish(stats.end_time)
    verdict = mux.shard_verdict(epoch, 0)
    per_obj = stats.per_object[0]
    ground = applied.objects[0]
    audit = pool.clients[0].report()
    first_stall = tap.first_stall_at
    if ground.below_k:
        detected_before_stall = audit.flagged and (
            first_stall is None or audit.first_flagged_at <= first_stall
        )
        false_flag = False
    else:
        detected_before_stall = True  # nothing to detect
        false_flag = audit.flagged
    return {
        "object": gid,
        "allocated": stats.allocation[0],
        "issued": per_obj.issued,
        "completed": per_obj.completed,
        "failed": per_obj.failed,
        "writes": per_obj.writes,
        "reads": per_obj.reads,
        "end_time": stats.end_time,
        "events": stats.events,
        "max_resident": mux.recorders[0].max_resident,
        "checker_ok": mux.object_ok(0),
        "verdict": verdict,
        "faults": ground.to_jsonable(),
        "below_k": ground.below_k,
        "withheld": len(ground.withheld),
        "surviving_elements": ground.surviving_elements,
        "isolated": len(ground.isolated),
        "crashed": len(ground.crashed),
        "audit": audit.to_jsonable(),
        "min_estimate": audit.min_estimate,
        "flagged": audit.flagged,
        "first_flagged_at": audit.first_flagged_at,
        "first_stall_at": first_stall,
        "stalled_reads": tap.stalled_reads,
        "detected_before_stall": detected_before_stall,
        "false_flag": false_flag,
    }


_OBJECT_RUNNERS = {
    "longrun": _closed_loop_object,
    "openloop": _open_loop_object,
    "adversary": _adversary_object,
}


def fleet_cell_point(payload: Dict[str, object]) -> Tuple[int, Dict[str, object]]:
    """Worker entry for one fleet cell (module-level, spawn-picklable).

    Runs every object of the cell's partition sequentially, each on its
    own fresh simulation, and returns the per-object payloads plus the
    cell's own CPU-seconds (the critical-path input of the all-core
    capacity metric) and peak RSS.  The ``index`` is the cell's position
    in the ``epochs × partitions`` grid, consumed by the order-restoring
    cursor on the coordinator.
    """
    from repro.analysis.pool import max_rss_kb  # lazy: see module docstring

    runner = _OBJECT_RUNNERS[payload["mode"]]
    wall0 = time.perf_counter()
    cpu0 = time.process_time()
    objects: List[Dict[str, object]] = [
        runner(payload, gid) for gid in payload["object_ids"]
    ]
    return payload["index"], {
        "epoch": payload["epoch"],
        "partition": payload["partition"],
        "seed": payload["epoch_seed"],
        "ops": payload["ops"],
        "objects": objects,
        "cpu_s": time.process_time() - cpu0,
        "wall_s": time.perf_counter() - wall0,
        "max_rss_kb": max_rss_kb(),
    }
