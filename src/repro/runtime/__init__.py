"""Shared runtime glue between protocols and the simulation substrate.

:class:`~repro.runtime.cluster.RegisterCluster` is the façade every
protocol implementation (SODA, SODAerr, ABD, CAS, CASGC) exposes: it wires
servers and clients to a :class:`~repro.sim.simulation.Simulation`, records
the operation history and the cost/latency metrics, and offers both
blocking (``write`` / ``read``) and scheduled (``schedule_write`` /
``schedule_read``) operation APIs used by the examples, workloads and
benchmarks.
"""

from repro.runtime.cluster import RegisterCluster, ScheduledOperation

__all__ = ["RegisterCluster", "ScheduledOperation"]
