"""Shared runtime glue between protocols and the simulation substrate.

:class:`~repro.runtime.cluster.RegisterCluster` is the façade every
protocol implementation (SODA, SODAerr, ABD, CAS, CASGC) exposes: it wires
servers and clients to a :class:`~repro.sim.simulation.Simulation`, records
the operation history and the cost/latency metrics, and offers both
blocking (``write`` / ``read``) and scheduled (``schedule_write`` /
``schedule_read``) operation APIs used by the examples, workloads and
benchmarks.
"""

from repro.runtime.cluster import RegisterCluster, ScheduledOperation

__all__ = ["RegisterCluster", "ScheduledOperation"]

# repro.runtime.namespace (MultiRegisterCluster) is intentionally not
# imported here: it depends on repro.baselines.registry, which imports the
# protocol packages — importing it eagerly would turn ``import
# repro.runtime`` into an import of the whole protocol stack.
