"""Availability-sampling audit reads.

A full read costs a majority round-trip plus ``k`` relayed coded elements;
detecting that a register has silently become unrecoverable (fewer than
``k`` coded elements reachable, e.g. because servers withhold their
elements) should cost far less.  The audit pool runs cheap probabilistic
probes in the style of data-availability sampling (SNIPPETS.md §1): each
round an :class:`AuditClient` probes a random ``sample`` of the ``n``
servers, counts which of them still serve element-bearing traffic, and
maintains a per-server *consecutive-miss streak*.  A server whose streak
reaches ``confirm`` is a **suspect**; the surviving-element estimate is
``n - |suspects|``, and the register is flagged **unrecoverable** while
the estimate sits below ``k``.

The confirmation streak is what gives the configurable confidence: one
missed probe can be bad luck (the probe or its reply raced a partition
heal), but ``confirm`` consecutive misses of the same server are
vanishingly unlikely unless the server really is unreachable or
withholding — probe replies ride the same network as protocol traffic and
are subject to the same adversaries (:mod:`repro.sim.adversary` drops
``AuditProbeResponse`` from withholding servers, partitions drop both
directions, crashed servers never answer).

Servers need no audit-specific code: protocol servers silently ignore
unknown message types, and the :class:`AuditPool` answers probes on their
behalf from a network delivery listener — the request must *reach* a live
server and the reply must *survive the trip back*, which is exactly the
reachability property being estimated.  Probes carry ``data_units = 0``
so audit traffic never perturbs the paper's communication-cost metrics.

Audit rounds are bounded (``rounds`` per client) so a simulation with an
audit pool still quiesces once foreground traffic drains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.sim.network import MessageRecord, ProcessId
from repro.sim.process import Process
from repro.sim.simulation import Simulation

__all__ = [
    "AuditProbeRequest",
    "AuditProbeResponse",
    "AuditConfig",
    "AuditReport",
    "AuditClient",
    "AuditPool",
]


@dataclass(frozen=True)
class AuditProbeRequest:
    """One availability probe; answered on the server's behalf by the pool."""

    probe_id: int
    reply_to: ProcessId
    data_units = 0.0


@dataclass(frozen=True)
class AuditProbeResponse:
    """A probe reply; withheld/dropped exactly like a coded-element relay."""

    probe_id: int
    server: ProcessId
    data_units = 0.0


@dataclass(frozen=True)
class AuditConfig:
    """Tuning knobs for the audit client pool.

    ``sample`` servers are probed per round, rounds start every
    ``interval`` time units (first one at ``start``), a probe unanswered
    after ``timeout`` counts as a miss, and a server is suspected after
    ``confirm`` consecutive missed rounds.  ``rounds`` bounds the total
    number of rounds per client so the simulation quiesces.
    """

    sample: int = 4
    interval: float = 2.5
    timeout: float = 2.0
    confirm: int = 2
    rounds: int = 80
    start: float = 1.0

    def __post_init__(self) -> None:
        if self.sample < 1:
            raise ValueError("audit sample size must be at least 1")
        if not self.interval > 0:
            raise ValueError("audit interval must be positive")
        if not 0 < self.timeout <= self.interval:
            raise ValueError(
                "audit timeout must be positive and at most the interval "
                "(rounds must not overlap)"
            )
        if self.confirm < 1:
            raise ValueError("audit confirmation streak must be at least 1")
        if self.rounds < 1:
            raise ValueError("audit rounds must be at least 1")
        if self.start < 0:
            raise ValueError("audit start time must be non-negative")


@dataclass(frozen=True)
class AuditReport:
    """What one object's audit client observed over the run."""

    object_index: int
    rounds: int
    probes_sent: int
    responses: int
    min_estimate: int
    flagged: bool
    first_flagged_at: Optional[float]
    flag_events: int
    last_cleared_at: Optional[float]
    unrecoverable_at_end: bool

    def to_jsonable(self) -> Dict[str, object]:
        return {
            "object": self.object_index,
            "rounds": self.rounds,
            "probes_sent": self.probes_sent,
            "responses": self.responses,
            "min_estimate": self.min_estimate,
            "flagged": self.flagged,
            "first_flagged_at": self.first_flagged_at,
            "flag_events": self.flag_events,
            "last_cleared_at": self.last_cleared_at,
            "unrecoverable_at_end": self.unrecoverable_at_end,
        }


class AuditClient(Process):
    """Background prober estimating one object's surviving element count."""

    def __init__(
        self,
        pid: ProcessId,
        server_ids: Sequence[ProcessId],
        k: int,
        config: AuditConfig,
        rng: np.random.Generator,
        *,
        object_index: int = 0,
    ) -> None:
        super().__init__(pid)
        if k > len(server_ids):
            raise ValueError(f"k={k} exceeds the server count {len(server_ids)}")
        self.servers: List[ProcessId] = list(server_ids)
        self.k = k
        self.config = config
        self.object_index = object_index
        self._rng = rng
        self._round = 0
        self._pending: Dict[int, ProcessId] = {}
        self._probed: List[ProcessId] = []
        self._streak: Dict[ProcessId, int] = {pid: 0 for pid in self.servers}
        self._suspects: set = set()
        self._next_probe_id = 0
        self.probes_sent = 0
        self.responses = 0
        self.min_estimate = len(self.servers)
        self.unrecoverable = False
        self.first_flagged_at: Optional[float] = None
        self.flag_events = 0
        self.last_cleared_at: Optional[float] = None

    def start(self) -> None:
        """Arm the first probe round (call after the process is attached)."""
        self.set_timer(
            self.config.start, self._probe_round, label=f"audit-start@{self.pid}"
        )

    # -- probing ---------------------------------------------------------
    def _probe_round(self) -> None:
        if self._round >= self.config.rounds:
            return
        self._round += 1
        count = min(self.config.sample, len(self.servers))
        chosen = self._rng.choice(len(self.servers), size=count, replace=False)
        self._pending = {}
        self._probed = []
        for idx in sorted(int(i) for i in chosen):
            server = self.servers[idx]
            probe_id = self._next_probe_id
            self._next_probe_id += 1
            self._pending[probe_id] = server
            self._probed.append(server)
            self.probes_sent += 1
            self.send(server, AuditProbeRequest(probe_id=probe_id, reply_to=self.pid))
        self.set_timer(
            self.config.timeout, self._evaluate, label=f"audit-eval@{self.pid}"
        )
        self.set_timer(
            self.config.interval, self._probe_round, label=f"audit-round@{self.pid}"
        )

    def on_message(self, sender: ProcessId, message: object) -> None:
        if isinstance(message, AuditProbeResponse):
            # Late replies (after the round's evaluation) are ignored; with
            # timeout >= the network's round-trip bound they only occur for
            # servers that really were unreachable at probe time.
            if self._pending.pop(message.probe_id, None) is not None:
                self.responses += 1

    # -- estimation ------------------------------------------------------
    def _evaluate(self) -> None:
        missed = set(self._pending.values())
        self._pending = {}
        for server in self._probed:
            if server in missed:
                streak = self._streak[server] + 1
                self._streak[server] = streak
                if streak >= self.config.confirm:
                    self._suspects.add(server)
            else:
                self._streak[server] = 0
                self._suspects.discard(server)
        estimate = len(self.servers) - len(self._suspects)
        if estimate < self.min_estimate:
            self.min_estimate = estimate
        if estimate < self.k:
            if not self.unrecoverable:
                self.unrecoverable = True
                self.flag_events += 1
                if self.first_flagged_at is None:
                    self.first_flagged_at = self.now
        elif self.unrecoverable:
            self.unrecoverable = False
            self.last_cleared_at = self.now

    def report(self) -> AuditReport:
        return AuditReport(
            object_index=self.object_index,
            rounds=self._round,
            probes_sent=self.probes_sent,
            responses=self.responses,
            min_estimate=self.min_estimate,
            flagged=self.first_flagged_at is not None,
            first_flagged_at=self.first_flagged_at,
            flag_events=self.flag_events,
            last_cleared_at=self.last_cleared_at,
            unrecoverable_at_end=self.unrecoverable,
        )


class AuditPool:
    """One audit client per object, sharing the cluster's clock and network.

    The pool registers a single delivery listener that answers
    :class:`AuditProbeRequest` on behalf of whichever *live* server the
    probe reached — protocol servers themselves ignore the unknown message
    type.  Replies travel back through the network send path, so they are
    subject to the same withholding, partition and crash drops as real
    coded-element relays.
    """

    def __init__(
        self,
        sim: Simulation,
        groups: Sequence[Tuple[int, str, Sequence[ProcessId]]],
        *,
        k: int,
        config: Optional[AuditConfig] = None,
        seeds: Optional[Sequence[int]] = None,
    ) -> None:
        self.config = config or AuditConfig()
        self._network = sim.network
        self.clients: List[AuditClient] = []
        self._servers: set = set()
        for slot, (object_index, namespace, server_ids) in enumerate(groups):
            seed = seeds[slot] if seeds is not None else slot
            client = AuditClient(
                f"{namespace}audit0",
                server_ids,
                k,
                self.config,
                np.random.default_rng(seed),
                object_index=object_index,
            )
            sim.add_process(client)
            self.clients.append(client)
            self._servers.update(server_ids)
        sim.network.on_deliver(self._answer_probe)

    def _answer_probe(self, record: MessageRecord) -> None:
        payload = record.payload
        if type(payload) is AuditProbeRequest and record.dst in self._servers:
            # Answer on the server's behalf; the reply rides the real
            # network (src = the probed server) so adversaries and crashes
            # apply to it exactly as to the server's own element relays.
            self._network.send(
                record.dst,
                payload.reply_to,
                AuditProbeResponse(probe_id=payload.probe_id, server=record.dst),
            )

    def start(self) -> None:
        for client in self.clients:
            client.start()

    def reports(self) -> List[AuditReport]:
        return [client.report() for client in self.clients]
