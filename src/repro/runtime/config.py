"""Shared driver configuration.

The closed-loop (:meth:`repro.runtime.cluster.RegisterCluster.run_streamed`)
and open-loop (:func:`repro.runtime.openloop.begin_open_loop`) drivers —
and their namespace counterparts — used to thread the same knobs through
four parallel kwarg lists.  :class:`RunConfig` consolidates them into one
validated dataclass that every driver consumes; the original kwargs remain
as thin per-call overrides resolved by :func:`resolve_config`, so existing
call sites keep working unchanged.

Knobs that only one driver reads are simply ignored by the other: the
closed loop has no admission queue (``policy`` / ``queue_per_server`` /
``op_timeout`` / ``read_fraction`` do not apply — its read mix is the
client mix), and the open loop has no think time (``mean_gap`` /
``start_window`` do not apply — arrivals fix the schedule).
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Optional

__all__ = ["ADMISSION_POLICIES", "RunConfig", "resolve_config"]

#: Admission-queue overflow policies, in CLI surface order (re-exported by
#: :mod:`repro.runtime.openloop`, its original home).
ADMISSION_POLICIES = ("drop", "shed-reads", "backpressure")


@dataclass(frozen=True)
class RunConfig:
    """Driver knobs shared by the closed- and open-loop run engines.

    * ``value_size`` — written value size in bytes;
    * ``warm_batch`` — values pre-encoded per encoder-cache refill;
    * ``mean_gap`` — closed-loop exponential think time between a client's
      operations;
    * ``start_window`` — closed-loop initial-invocation jitter window;
    * ``read_fraction`` — open-loop probability that an arrival is a read;
    * ``policy`` — open-loop admission-queue overflow policy;
    * ``queue_per_server`` — open-loop admission-queue capacity per server;
    * ``op_timeout`` — open-loop maximum queue wait (None disables);
    * ``keep_samples`` — open-loop raw latency sample retention.
    """

    value_size: int = 32
    warm_batch: int = 64
    mean_gap: float = 0.25
    start_window: float = 1.0
    read_fraction: float = 0.5
    policy: str = "drop"
    queue_per_server: int = 4
    op_timeout: Optional[float] = None
    keep_samples: bool = False

    def __post_init__(self) -> None:
        if self.value_size < 1:
            raise ValueError("value_size must be at least 1")
        if self.warm_batch < 1:
            raise ValueError("warm_batch must be at least 1")
        if self.mean_gap < 0 or self.start_window < 0:
            raise ValueError("mean_gap and start_window must be non-negative")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError("read_fraction must be within [0, 1]")
        if self.policy not in ADMISSION_POLICIES:
            raise ValueError(
                f"unknown admission policy {self.policy!r}; "
                f"expected one of {', '.join(ADMISSION_POLICIES)}"
            )
        if self.queue_per_server < 1:
            raise ValueError("queue_per_server must be at least 1")
        if self.op_timeout is not None and not self.op_timeout > 0:
            raise ValueError("op_timeout must be positive (or None to disable)")


def resolve_config(config: Optional[RunConfig], **overrides) -> RunConfig:
    """Merge per-call keyword overrides onto a base config.

    ``None`` overrides mean "not specified, use the config's value" —
    which makes legacy kwargs (now defaulting to ``None``) transparent
    adapters over the config.  ``op_timeout`` is the one knob whose
    *meaningful* value can be ``None`` (timeout disabled); that is also
    its config default, so the ambiguity is harmless.
    """
    base = config if config is not None else RunConfig()
    known = {f.name for f in fields(RunConfig)}
    cleaned = {}
    for name, value in overrides.items():
        if name not in known:
            raise TypeError(f"unknown run-config field {name!r}")
        if value is not None:
            cleaned[name] = value
    return replace(base, **cleaned) if cleaned else base
