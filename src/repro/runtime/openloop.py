"""The open-loop traffic driver.

The closed-loop driver (:meth:`repro.runtime.cluster.RegisterCluster.run_streamed`)
keeps one pending operation per client, so offered load self-limits and
latency tails are invisible.  This module drives a cluster *open-loop*: an
arrival process from :mod:`repro.workloads.arrivals` fixes the invocation
schedule up front, and the cluster either keeps up or visibly degrades.

Mechanics
---------
* **Virtual clients.**  Arrivals are multiplexed over the cluster's writer
  and reader process pools on the shared clock.  An idle client is pulled
  from a free list at dispatch and returned on completion, so thousands of
  queued requests need no per-request process.
* **Bounded admission queue.**  When no client of the right kind is idle,
  the arrival waits in a FIFO admission queue bounded at
  ``queue_per_server * n`` entries (the replica group's aggregate backlog).
  A full queue applies the configured policy:

  - ``drop`` — reject the incoming arrival (counted ``rejected``);
  - ``shed-reads`` — reject incoming reads; an incoming write instead
    evicts the oldest queued read (counted ``shed_reads``) and is
    admitted, so writes survive read storms;
  - ``backpressure`` — pause the arrival stream until the queue drains
    below capacity, shifting the remaining schedule by the stall time
    (counted ``stall_time``) — the closed-loop-style "slow the client
    down" degradation.

  Either way the event queue stays bounded by
  ``clients + queue capacity + 1`` instead of growing with the arrival
  backlog — saturation degrades gracefully.
* **Timeout-as-failure.**  With ``op_timeout`` set, a queued arrival whose
  wait exceeds the timeout is expired at dispatch time and counted
  ``timed_out`` — explicitly a failure, never silently retried.
* **Latency.**  Completion latency is measured from *arrival* (not
  dispatch), so queueing delay is part of the number — that is the tail
  the paper's ``5δ``/``6δ`` bounds are about.  Latencies stream into the
  bounded-memory :class:`~repro.metrics.latency.LatencyHistogram`, one per
  operation kind, mergeable across epochs and shards.

Everything derives from the driver ``seed``; one run is reproducible
event-for-event, and per-epoch derived seeds shard deterministically.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.consistency.history import OperationRecord
from repro.consistency.stream import StreamObserver
from repro.metrics.latency import LatencyHistogram
from repro.runtime.config import ADMISSION_POLICIES, RunConfig, resolve_config
from repro.sim.process import Process

__all__ = ["ADMISSION_POLICIES", "OpenLoopStats", "begin_open_loop"]


@dataclass
class OpenLoopStats:
    """Outcome of one open-loop run.

    ``requested`` arrivals flow through admission: each is either
    dispatched/queued (``admitted``), rejected at a full queue
    (``rejected``), or — for queued writes under ``shed-reads`` — admitted
    by evicting a queued read (the victim counts in ``shed_reads``).
    Admitted arrivals are ``issued`` unless their queue wait exceeded the
    timeout (``timed_out``) or the run ended first (``queued_at_end``).
    Issued operations end up ``completed`` or ``failed``.
    """

    requested: int
    policy: str
    queue_capacity: int
    arrived: int = 0
    admitted: int = 0
    issued: int = 0
    completed: int = 0
    failed: int = 0
    rejected: int = 0
    shed_reads: int = 0
    timed_out: int = 0
    writes: int = 0
    reads: int = 0
    max_queue_depth: int = 0
    queued_at_end: int = 0
    stall_time: float = 0.0
    end_time: float = 0.0
    events: int = 0
    truncated: bool = False
    read_latency: LatencyHistogram = field(default_factory=LatencyHistogram)
    write_latency: LatencyHistogram = field(default_factory=LatencyHistogram)
    #: Raw per-kind latency samples, kept only when ``keep_samples`` is
    #: set (for cross-validating histogram percentiles against exact
    #: ``numpy.percentile`` on small runs).
    samples: Optional[Dict[str, List[float]]] = None

    @property
    def in_flight_at_end(self) -> int:
        return self.issued - self.completed - self.failed

    def latency(self) -> LatencyHistogram:
        """Reads and writes merged into one histogram (a fresh copy)."""
        return self.read_latency.copy().merge(self.write_latency)


def begin_open_loop(
    cluster,
    *,
    operations: int,
    arrival,
    read_fraction: Optional[float] = None,
    policy: Optional[str] = None,
    queue_per_server: Optional[int] = None,
    op_timeout: Optional[float] = None,
    value_size: Optional[int] = None,
    seed: int = 0,
    value_prefix: str = "",
    warm_batch: Optional[int] = None,
    keep_samples: Optional[bool] = None,
    config: Optional[RunConfig] = None,
) -> Tuple[OpenLoopStats, Callable[[], None]]:
    """Arm one open-loop run on ``cluster`` without running the simulation.

    Pre-generates the arrival schedule and operation kinds from ``seed``
    (O(8 bytes) per operation — no values, no events), schedules the first
    arrival, and subscribes the completion driver.  Returns
    ``(stats, finalize)`` exactly like
    :meth:`~repro.runtime.cluster.RegisterCluster._begin_streamed`, so the
    namespace layer can arm one driver per register object on a shared
    simulation.

    Driver knobs resolve through :class:`~repro.runtime.config.RunConfig`
    (validated there): a shared ``config`` supplies the defaults, explicit
    keyword values override it per call.
    """
    if operations < 0:
        raise ValueError("operations cannot be negative")
    cfg = resolve_config(
        config,
        read_fraction=read_fraction,
        policy=policy,
        queue_per_server=queue_per_server,
        op_timeout=op_timeout,
        value_size=value_size,
        warm_batch=warm_batch,
        keep_samples=keep_samples,
    )
    read_fraction = cfg.read_fraction
    policy = cfg.policy
    queue_per_server = cfg.queue_per_server
    op_timeout = cfg.op_timeout
    value_size = cfg.value_size
    warm_batch = cfg.warm_batch
    keep_samples = cfg.keep_samples

    sim = cluster.sim
    rng = np.random.default_rng(seed)
    schedule = arrival.generate(rng, operations)
    is_read = rng.random(operations) < read_fraction
    capacity = queue_per_server * cluster.n
    stats = OpenLoopStats(
        requested=operations,
        policy=policy,
        queue_capacity=capacity,
        samples={"read": [], "write": []} if keep_samples else None,
    )

    # Free lists, reversed so .pop() hands out the lowest-numbered idle
    # client first (deterministic assignment order).
    idle: Dict[str, List[Process]] = {
        "write": [cluster.writers[pid] for pid in reversed(cluster.writer_ids)],
        "read": [cluster.readers[pid] for pid in reversed(cluster.reader_ids)],
    }
    queues: Dict[str, Deque[float]] = {"write": deque(), "read": deque()}
    #: op_id -> (arrival_time, kind) for operations this run issued.
    outstanding: Dict[str, Tuple[float, str]] = {}
    state = {
        "next": 0,
        "stalled": False,
        "stall_started": 0.0,
        "shift": 0.0,
        "active": True,
        "value_seq": 0,
    }
    value_queue: List[bytes] = []

    def queue_depth() -> int:
        return len(queues["write"]) + len(queues["read"])

    def next_value() -> bytes:
        if not value_queue:
            batch = []
            for _ in range(max(1, warm_batch)):
                header = f"{value_prefix}#{state['value_seq']}|".encode()
                state["value_seq"] += 1
                filler = b""
                if value_size > len(header):
                    filler = rng.integers(
                        0, 256, size=value_size - len(header), dtype=np.uint8
                    ).tobytes()
                batch.append(header + filler)
            cluster.warm_encode(batch)
            value_queue.extend(reversed(batch))
        return value_queue.pop()

    def dispatch(kind: str, arrival_time: float) -> bool:
        """Issue one ``kind`` operation on an idle client, if any."""
        pool = idle[kind]
        while pool and pool[-1].is_crashed:
            pool.pop()  # crashed clients leave the rotation for good
        if not pool:
            return False
        client = pool.pop()
        if kind == "write":
            op_id = client.start_write(next_value())
            stats.writes += 1
        else:
            op_id = client.start_read()
            stats.reads += 1
        outstanding[op_id] = (arrival_time, kind)
        stats.issued += 1
        return True

    def schedule_next_arrival() -> None:
        index = state["next"]
        if not state["active"] or state["stalled"] or index >= operations:
            return
        due = schedule[index] + state["shift"]
        sim.schedule_at(max(due, sim.now), on_arrival, label="open-loop arrival")

    def on_arrival() -> None:
        if not state["active"]:
            return
        index = state["next"]
        kind = "read" if is_read[index] else "write"
        now = sim.now
        depth = queue_depth()
        if depth >= capacity and policy == "backpressure":
            # Stall the arrival stream: this arrival (and everything
            # behind it) waits until the queue drains below capacity.
            state["stalled"] = True
            state["stall_started"] = now
            return
        state["next"] = index + 1
        stats.arrived += 1
        if not queues[kind] and dispatch(kind, now):
            stats.admitted += 1
        elif depth < capacity:
            queues[kind].append(now)
            stats.admitted += 1
            stats.max_queue_depth = max(stats.max_queue_depth, depth + 1)
        elif policy == "shed-reads" and kind == "write" and queues["read"]:
            queues["read"].popleft()
            stats.shed_reads += 1
            queues[kind].append(now)
            stats.admitted += 1
        else:
            stats.rejected += 1
        schedule_next_arrival()

    def pump(kind: str) -> None:
        """Drain queued ``kind`` arrivals onto newly idle clients."""
        queue = queues[kind]
        now = sim.now
        while queue:
            arrival_time = queue[0]
            if op_timeout is not None and now - arrival_time > op_timeout:
                queue.popleft()
                stats.timed_out += 1
                continue
            if not dispatch(kind, arrival_time):
                return
            queue.popleft()

    def resume_arrivals() -> None:
        if state["stalled"] and queue_depth() < capacity:
            stats.stall_time += sim.now - state["stall_started"]
            state["stalled"] = False
            schedule_next_arrival()

    class _OpenLoopDriver(StreamObserver):
        def _advance(self, record: OperationRecord, failed: bool) -> None:
            if not state["active"]:
                return
            entry = outstanding.pop(record.op_id, None)
            if entry is None:
                return  # not one of this run's operations
            arrival_time, kind = entry
            finished_at = (
                record.responded_at if record.responded_at is not None else sim.now
            )
            stats.end_time = max(stats.end_time, finished_at)
            if failed:
                stats.failed += 1
            else:
                stats.completed += 1
                latency = finished_at - arrival_time
                hist = stats.write_latency if kind == "write" else stats.read_latency
                hist.record(latency)
                if stats.samples is not None:
                    stats.samples[kind].append(latency)
            client = (
                cluster.writers.get(record.client)
                if kind == "write"
                else cluster.readers.get(record.client)
            )
            if client is not None and not client.is_crashed:
                idle[kind].append(client)
            pump(kind)
            resume_arrivals()

        def on_complete(self, record: OperationRecord) -> None:
            self._advance(record, failed=False)

        def on_failed(self, record: OperationRecord) -> None:
            self._advance(record, failed=True)

    driver = cluster.history.subscribe(_OpenLoopDriver())
    schedule_next_arrival()

    def finalize() -> None:
        state["active"] = False
        cluster.history.unsubscribe(driver)
        if state["stalled"]:
            stats.stall_time += sim.now - state["stall_started"]
            state["stalled"] = False
        stats.queued_at_end = queue_depth()
        stats.end_time = max(stats.end_time, sim.now)

    return stats, finalize
