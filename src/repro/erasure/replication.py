"""Replication as a degenerate ``[n, 1]`` MDS code.

The ABD baseline (Attiya–Bar-Noy–Dolev) stores a full copy of the value at
every server.  Expressing replication through the same
:class:`~repro.erasure.mds.MDSCode` interface lets every protocol in this
repository share one storage/communication cost accounting path: a
"coded element" of the replication code is simply the whole value
(``data_units == 1``), so the total storage cost of ``n`` replicas is ``n``
units, matching the paper's Table I row for ABD.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, List

import numpy as np

from repro.erasure.mds import CodedElement, DecodingError, MDSCode


class ReplicationCode(MDSCode):
    """The trivial ``[n, 1]`` code: every coded element is the full value."""

    def __init__(self, n: int) -> None:
        super().__init__(n, 1)

    def encode(self, value: bytes) -> List[CodedElement]:
        framed = self._frame(value).tobytes()
        return [CodedElement(index=i, data=framed) for i in range(self.n)]

    def decode(self, elements: Iterable[CodedElement]) -> bytes:
        available = self._collect(elements)
        if not available:
            raise DecodingError("need at least one replica to decode")
        data = next(iter(available.values()))
        return self._unframe(np.frombuffer(data, dtype=np.uint8))

    def decode_with_errors(
        self, elements: Iterable[CodedElement], max_errors: int
    ) -> bytes:
        """Majority vote across replicas: tolerates up to ``max_errors``
        corrupted replicas provided at least ``max_errors + 1`` correct
        replicas are supplied."""
        if max_errors < 0:
            raise ValueError("max_errors must be non-negative")
        available = self._collect(elements)
        if len(available) < 2 * max_errors + 1:
            raise DecodingError(
                f"need at least 2e+1 = {2 * max_errors + 1} replicas to out-vote "
                f"{max_errors} corrupted ones, got {len(available)}"
            )
        counts = Counter(available.values())
        data, votes = counts.most_common(1)[0]
        if votes < len(available) - max_errors:
            raise DecodingError(
                "no replica value has a sufficient majority "
                f"({votes} votes out of {len(available)})"
            )
        return self._unframe(np.frombuffer(data, dtype=np.uint8))
