"""Classical Reed–Solomon ``[n, k]`` codes over GF(2^8).

This is the MDS code used by SODA (erasure-only decoding from any ``k``
coded elements) and SODAerr (errors-and-erasures decoding from ``k + 2e``
coded elements of which up to ``e`` are silently corrupted).

Construction
------------
The code is the classical (shortened) Reed–Solomon code with generator
polynomial ``g(x) = prod_{j=0}^{n-k-1} (x - alpha^j)``.  A value is framed
(length header + zero padding, see :class:`repro.erasure.mds.MDSCode`),
reshaped into a ``k x stripe`` byte matrix, and every byte column is
encoded independently into an ``n``-symbol codeword; coded element ``i`` is
row ``i`` of the resulting ``n x stripe`` matrix.  Encoding is systematic:
elements ``0..k-1`` carry the framed value verbatim, elements ``k..n-1``
carry parity.

Encoding and erasure-only decoding are expressed as matrix products over
GF(2^8) so the work is vectorised along the (long) value axis.
Errors-and-erasures decoding follows the textbook pipeline — syndromes,
erasure locator, modified (Forney) syndromes, Berlekamp–Massey, Chien
search, Forney's magnitude formula — and is cross-checked in the test suite
against an independent combinatorial decode-and-verify implementation.

Position/locator convention: codeword symbol ``i`` (0-based, 0 is the first
systematic symbol) is the coefficient of ``x^(n-1-i)`` of the codeword
polynomial, so its locator is ``X_i = alpha^(n-1-i)``.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

from repro.erasure import poly
from repro.erasure.gf import GF256, default_field
from repro.erasure.linear import DEFAULT_DECODE_CACHE_SIZE, LinearCode
from repro.erasure.mds import CodedElement, DecodingError


class ReedSolomonCode(LinearCode):
    """A systematic ``[n, k]`` Reed–Solomon code over GF(2^8).

    Parameters
    ----------
    n:
        Code length (number of servers); must satisfy ``k <= n <= 255``.
    k:
        Code dimension (number of elements sufficient for reconstruction).
    field:
        Optional field instance (tests exercise alternative primitive
        polynomials); defaults to the shared GF(2^8) instance.
    decode_cache_size:
        Bound on the LRU cache of inverted decode submatrices (there are
        C(n, k) distinct index sets, far too many to cache unboundedly).
    """

    def __init__(
        self,
        n: int,
        k: int,
        field: GF256 | None = None,
        *,
        decode_cache_size: int = DEFAULT_DECODE_CACHE_SIZE,
    ) -> None:
        super().__init__(n, k)
        if n > 255:
            raise ValueError(f"Reed-Solomon over GF(2^8) supports n <= 255, got {n}")
        self.field = field or default_field()
        self._nparity = n - k
        self._generator_poly = self._build_generator_poly()
        # Systematic encode matrix (n, k) plus the shared linear-code
        # pipeline (encode/decode, batched variants, decode-matrix cache).
        self._init_linear(
            self.field,
            self._build_encode_matrix(),
            decode_cache_size=decode_cache_size,
        )
        # Syndrome matrix: shape (n-k, n); S = syndrome_matrix @ received.
        self._syndrome_matrix = self._build_syndrome_matrix()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def _build_generator_poly(self) -> List[int]:
        """``g(x) = prod_{j=0}^{n-k-1} (x - alpha^j)`` (descending coefficients)."""
        roots = [self.field.alpha_pow(j) for j in range(self._nparity)]
        return poly.from_roots(self.field, roots)

    def _encode_column_systematic(self, message: Sequence[int]) -> List[int]:
        """Encode one k-symbol column by polynomial division (reference path)."""
        if len(message) != self.k:
            raise ValueError(f"message must have exactly k={self.k} symbols")
        if self._nparity == 0:
            return list(message)
        shifted = list(message) + [0] * self._nparity
        remainder = poly.mod(self.field, shifted, self._generator_poly)
        parity = [0] * (self._nparity - len(remainder)) + list(remainder)
        return list(message) + parity

    def _build_encode_matrix(self) -> np.ndarray:
        """Derive the systematic generator matrix by encoding the unit vectors."""
        G = np.zeros((self.n, self.k), dtype=np.uint8)
        for i in range(self.k):
            unit = [0] * self.k
            unit[i] = 1
            codeword = self._encode_column_systematic(unit)
            G[:, i] = codeword
        return G

    def _build_syndrome_matrix(self) -> np.ndarray:
        """``A[j, i] = alpha^(j * (n - 1 - i))`` so that ``S_j = sum_i r_i A[j, i]``."""
        A = np.zeros((max(self._nparity, 1), self.n), dtype=np.uint8)
        for j in range(self._nparity):
            for i in range(self.n):
                A[j, i] = self.field.pow(self.field.alpha_pow(self.n - 1 - i), j)
        return A[: self._nparity] if self._nparity else np.zeros((0, self.n), dtype=np.uint8)

    def _locator(self, position: int) -> int:
        """The error locator ``X_i = alpha^(n-1-i)`` of codeword position ``i``."""
        return self.field.alpha_pow(self.n - 1 - position)

    # Encoding, erasure-only decoding (Phi^-1) and the batched
    # encode_many/decode_many pipeline are inherited from LinearCode.

    # ------------------------------------------------------------------
    # public API: errors-and-erasures decoding (Phi^-1_err)
    # ------------------------------------------------------------------
    def decode_with_errors(
        self, elements: Iterable[CodedElement], max_errors: int
    ) -> bytes:
        """Reconstruct from ``>= k + 2*max_errors`` elements with up to
        ``max_errors`` silent corruptions among them.

        The missing positions are treated as erasures; the decoding radius
        requirement ``2*errors + erasures <= n - k`` is checked up front.
        """
        if max_errors < 0:
            raise ValueError("max_errors must be non-negative")
        available = self._collect(elements)
        if len(available) < self.k + 2 * max_errors:
            raise DecodingError(
                f"need at least k + 2e = {self.k + 2 * max_errors} elements, "
                f"got {len(available)}"
            )
        self._check_indices(available)
        if max_errors == 0:
            return self.decode(
                [CodedElement(i, d) for i, d in available.items()]
            )
        erasure_positions = [i for i in range(self.n) if i not in available]
        if 2 * max_errors + len(erasure_positions) > self._nparity:
            raise DecodingError(
                f"decoding radius exceeded: 2*{max_errors} errors + "
                f"{len(erasure_positions)} erasures > n-k = {self._nparity}"
            )
        stripe = self._stripe_length(available)
        received = np.zeros((self.n, stripe), dtype=np.uint8)
        for idx, data in available.items():
            received[idx] = np.frombuffer(data, dtype=np.uint8)

        syndromes = self.field.matmul(self._syndrome_matrix, received)  # (2t, stripe)
        dirty_columns = np.nonzero(np.any(syndromes != 0, axis=0))[0]
        if dirty_columns.size == 0:
            return self._unframe(received[: self.k, :])

        # Stripe-level fast path: element corruption (disk faults, the
        # `corrupt` helper) dirties every byte of an element, so all dirty
        # columns typically share one errata pattern.  Locate the errata on
        # the first dirty column only, erasure-decode the whole stripe from
        # clean rows, and verify the re-encoded codeword against every
        # retained row — sound by MDS distance, see the helper.  Any
        # mismatch (per-column error patterns DO differ) falls back to the
        # per-column pipeline below, byte-identical to the pre-fast-path
        # behaviour either way.
        message = self._decode_stripe_with_errors(
            received, available, syndromes, dirty_columns, erasure_positions, max_errors
        )
        if message is None:
            corrected = received.copy()
            for col in dirty_columns:
                column_syndromes = [int(s) for s in syndromes[:, col]]
                corrected[:, col] = self._correct_column(
                    received[:, col], column_syndromes, erasure_positions, max_errors
                )
            message = corrected[: self.k, :]
        return self._unframe(message)

    def _decode_stripe_with_errors(
        self,
        received: np.ndarray,
        available: dict,
        syndromes: np.ndarray,
        dirty_columns: np.ndarray,
        erasure_positions: Sequence[int],
        max_errors: int,
    ) -> np.ndarray | None:
        """Whole-stripe errors-and-erasures decode under a shared-errata
        hypothesis; returns the ``(k, stripe)`` message or ``None``.

        The errata positions located on the *first* dirty column are taken
        as the hypothesis for the whole stripe.  Decoding is then a plain
        erasure decode from ``k`` rows outside the hypothesised error set,
        verified by re-encoding: the result ``D`` agrees with the received
        stripe on every retained row, and the true codeword ``C`` differs
        from the received stripe only on true-error rows, so ``D`` and
        ``C`` can disagree on at most ``2*max_errors + erasures <= n - k``
        positions — fewer than the MDS distance ``n - k + 1`` — forcing
        ``D == C`` whenever the verification passes, even if the hypothesis
        named the wrong rows.  Verification failure returns ``None`` (the
        caller falls back to per-column decoding), never a wrong answer.
        """
        first = int(dirty_columns[0])
        column_syndromes = [int(s) for s in syndromes[:, first]]
        try:
            errata_positions, _ = self._locate_errata(
                column_syndromes, erasure_positions, max_errors
            )
        except DecodingError:
            return None
        error_rows = set(errata_positions) - set(erasure_positions)
        keep = [i for i in sorted(available) if i not in error_rows]
        if len(keep) < self.k:
            return None
        indices = tuple(keep[: self.k])
        inverse = self._decode_matrix(indices)
        message = self.field.matmul(inverse, received[list(indices), :])
        codeword = self.field.matmul(self._encode_matrix, message)
        if not np.array_equal(codeword[keep], received[keep]):
            return None
        return message

    # ------------------------------------------------------------------
    # per-column errors-and-erasures machinery
    # ------------------------------------------------------------------
    def _correct_column(
        self,
        column: np.ndarray,
        syndromes: List[int],
        erasure_positions: Sequence[int],
        max_errors: int,
    ) -> np.ndarray:
        """Correct a single byte column given its (non-zero) syndromes."""
        field = self.field
        nparity = self._nparity
        errata_positions, psi = self._locate_errata(
            syndromes, erasure_positions, max_errors
        )
        omega = self._poly_mul_asc(syndromes, psi)[:nparity]
        psi_derivative = self._derivative_asc(psi)
        corrected = column.copy()
        for pos in errata_positions:
            X = self._locator(pos)
            X_inv = field.inv(X)
            denom = self._eval_asc(psi_derivative, X_inv)
            if denom == 0:
                raise DecodingError("Forney denominator vanished (repeated locator?)")
            magnitude = field.mul(X, field.div(self._eval_asc(omega, X_inv), denom))
            corrected[pos] ^= magnitude

        # Sanity: the corrected column must be a codeword.
        check = self.field.matmul(self._syndrome_matrix, corrected[:, None])
        if np.any(check != 0):
            raise DecodingError("correction failed: residual syndromes are non-zero")
        return corrected

    def _locate_errata(
        self,
        syndromes: List[int],
        erasure_positions: Sequence[int],
        max_errors: int,
    ) -> tuple[List[int], List[int]]:
        """Locate errata from one column's syndromes.

        Runs the erasure locator / Forney syndromes / Berlekamp–Massey /
        Chien pipeline and returns ``(errata_positions, psi)`` where ``psi``
        is the combined (ascending) errata locator polynomial.  Raises
        :class:`DecodingError` when the pattern is outside the declared
        radius or the locator fails its structural checks.
        """
        erasure_locators = [self._locator(p) for p in erasure_positions]
        gamma = self._locator_poly(erasure_locators)  # ascending

        modified = self._modified_syndromes(syndromes, gamma)
        lam = self._berlekamp_massey(modified)
        num_errors = len(lam) - 1
        if num_errors > max_errors:
            raise DecodingError(
                f"located {num_errors} errors, more than the declared bound "
                f"{max_errors}"
            )
        psi = self._poly_mul_asc(lam, gamma)
        errata_positions = self._chien_search(psi)
        if len(errata_positions) != len(psi) - 1:
            raise DecodingError(
                "errata locator polynomial does not split over the code positions"
            )
        if not set(erasure_positions) <= set(errata_positions):
            raise DecodingError("erasure positions are not roots of the errata locator")
        extra = set(errata_positions) - set(erasure_positions)
        if len(extra) > max_errors:
            raise DecodingError(
                f"found {len(extra)} error positions, more than the bound {max_errors}"
            )
        return errata_positions, psi

    def _locator_poly(self, locators: Sequence[int]) -> List[int]:
        """``prod_l (1 - X_l x)`` as an ascending coefficient list."""
        gamma = [1]
        for X in locators:
            gamma = self._poly_mul_asc(gamma, [1, X])
        return gamma

    def _modified_syndromes(self, syndromes: List[int], gamma: List[int]) -> List[int]:
        """Forney syndromes ``T_i = sum_d Gamma_d S_(i + rho - d)``.

        The erasure contributions cancel, leaving a plain syndrome sequence
        of length ``(n-k) - rho`` for the (unknown-location) errors only.
        """
        rho = len(gamma) - 1
        nparity = self._nparity
        out: List[int] = []
        for i in range(nparity - rho):
            acc = 0
            for d, g in enumerate(gamma):
                acc ^= self.field.mul(g, syndromes[i + rho - d])
            out.append(acc)
        return out

    def _berlekamp_massey(self, syndromes: Sequence[int]) -> List[int]:
        """Massey's algorithm: minimal LFSR (ascending error locator) for the
        given syndrome sequence."""
        field = self.field
        lam = [1]
        prev = [1]
        L = 0
        m = 1
        b = 1
        for i, s in enumerate(syndromes):
            delta = s
            for j in range(1, L + 1):
                if j < len(lam):
                    delta ^= field.mul(lam[j], syndromes[i - j])
            if delta == 0:
                m += 1
                continue
            shifted = [0] * m + [field.mul(c, field.div(delta, b)) for c in prev]
            updated = self._poly_add_asc(lam, shifted)
            if 2 * L <= i:
                prev = lam
                L = i + 1 - L
                b = delta
                m = 1
            else:
                m += 1
            lam = updated
        # Trim trailing zero coefficients (highest-degree terms).
        while len(lam) > 1 and lam[-1] == 0:
            lam.pop()
        if len(lam) - 1 > L:
            lam = lam[: L + 1]
        return lam

    def _chien_search(self, psi: Sequence[int]) -> List[int]:
        """Positions ``i`` whose locator inverse is a root of ``psi``."""
        roots = []
        for i in range(self.n):
            X_inv = self.field.inv(self._locator(i))
            if self._eval_asc(psi, X_inv) == 0:
                roots.append(i)
        return roots

    # -- small ascending-order polynomial helpers (decoder-local) -------
    def _poly_mul_asc(self, p: Sequence[int], q: Sequence[int]) -> List[int]:
        out = [0] * (len(p) + len(q) - 1)
        for i, a in enumerate(p):
            if a == 0:
                continue
            for j, c in enumerate(q):
                if c == 0:
                    continue
                out[i + j] ^= self.field.mul(a, c)
        return out

    @staticmethod
    def _poly_add_asc(p: Sequence[int], q: Sequence[int]) -> List[int]:
        out = [0] * max(len(p), len(q))
        for i, a in enumerate(p):
            out[i] ^= a
        for i, c in enumerate(q):
            out[i] ^= c
        return out

    def _eval_asc(self, p: Sequence[int], x: int) -> int:
        acc = 0
        for c in reversed(p):
            acc = self.field.mul(acc, x) ^ c
        return acc

    @staticmethod
    def _derivative_asc(p: Sequence[int]) -> List[int]:
        """Formal derivative of an ascending-order polynomial over GF(2^m)."""
        out = [0] * max(len(p) - 1, 1)
        for j in range(1, len(p)):
            if j % 2 == 1:
                out[j - 1] = p[j]
        return out

    # ------------------------------------------------------------------
    # reference / introspection helpers used by tests
    # ------------------------------------------------------------------
    @property
    def generator_poly(self) -> List[int]:
        """The generator polynomial (descending coefficients)."""
        return list(self._generator_poly)

    def is_codeword(self, symbols: Sequence[int]) -> bool:
        """Check whether a full n-symbol column is a codeword (zero syndromes)."""
        if len(symbols) != self.n:
            raise ValueError(f"expected {self.n} symbols, got {len(symbols)}")
        col = np.asarray(symbols, dtype=np.uint8)[:, None]
        syndromes = self.field.matmul(self._syndrome_matrix, col)
        return not np.any(syndromes != 0)
