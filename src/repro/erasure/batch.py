"""Batched / memoized encoding front-end shared by a cluster's servers.

In the MD-VALUE dispersal primitive every server of the dispersal set (the
first ``f + 1`` servers) encodes the *same* value to derive the coded
elements it forwards — ``f + 1`` identical encodes per write.  A
:class:`CachedEncoder` shared across the cluster collapses those into one,
and its :meth:`warm` method lets workload drivers pre-encode a whole batch
of values with a single wide GF(2^8) matmul
(:meth:`~repro.erasure.mds.MDSCode.encode_many`) before the simulation
starts, so the in-simulation hot path is pure cache hits.

The cache is LRU-bounded: scenario sweeps reuse a small working set of
values, while long randomized workloads with unique values stay within a
predictable memory budget.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, List

from repro.erasure.mds import CodedElement, MDSCode

#: Default bound on memoized values per encoder.
DEFAULT_ENCODER_CAPACITY = 1024


class CachedEncoder:
    """Memoizing ``encode`` wrapper around an :class:`MDSCode`."""

    def __init__(self, code: MDSCode, capacity: int = DEFAULT_ENCODER_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("encoder capacity must be at least 1")
        self.code = code
        self.capacity = capacity
        self._cache: "OrderedDict[bytes, List[CodedElement]]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def encode(self, value: bytes) -> List[CodedElement]:
        """Encode ``value``, serving repeats from the cache."""
        cached = self._cache.get(value)
        if cached is not None:
            self.hits += 1
            self._cache.move_to_end(value)
            return cached
        self.misses += 1
        elements = self.code.encode(value)
        self._insert(value, elements)
        return elements

    def warm(self, values: Iterable[bytes]) -> int:
        """Pre-encode a batch of values with one wide matmul.

        Duplicates and already-cached values are skipped, and the batch is
        capped at the cache capacity — encoding more would only evict the
        excess again before it is ever served, doubling the work and
        spiking memory with one wide stripe matrix per surplus value.
        Returns the number of values actually encoded.
        """
        fresh = [v for v in dict.fromkeys(values) if v not in self._cache]
        fresh = fresh[: self.capacity]
        if not fresh:
            return 0
        for value, elements in zip(fresh, self.code.encode_many(fresh)):
            self._insert(value, elements)
        return len(fresh)

    def _insert(self, value: bytes, elements: List[CodedElement]) -> None:
        self._cache[value] = elements
        if len(self._cache) > self.capacity:
            self._cache.popitem(last=False)

    def __len__(self) -> int:
        return len(self._cache)

    def __contains__(self, value: bytes) -> bool:
        return value in self._cache
