"""Batched / memoized codec front-ends shared by a cluster's processes.

Encoding: in the MD-VALUE dispersal primitive every server of the
dispersal set (the first ``f + 1`` servers) encodes the *same* value to
derive the coded elements it forwards — ``f + 1`` identical encodes per
write.  A :class:`CachedEncoder` shared across the cluster collapses those
into one, and its :meth:`CachedEncoder.warm` method lets workload drivers
pre-encode a whole batch of values with a single wide GF(2^8) matmul
(:meth:`~repro.erasure.mds.MDSCode.encode_many`) before the simulation
starts, so the in-simulation hot path is pure cache hits.  For workloads
that cannot be pre-encoded, a :class:`WriteEncodeBatcher` collects the
encodes issued within one event-loop drain and flushes the cache misses
through a single ``encode_many`` call — one fused stripe matmul.

Decoding: concurrent reads of the same version decode the same
``(tag, element-set)`` over and over — every read between two writes
reconstructs an identical value.  A :class:`CachedDecoder` shared by a
cluster's readers memoizes those reconstructions (including SODAerr's
far more expensive errors-and-erasures decode), and a
:class:`ReadDecodeBatcher` collects the decodes that become ready within
one event-loop drain and pushes the cache misses through
:meth:`~repro.erasure.mds.MDSCode.decode_many` in a single call.  The
batcher flushes through the simulation's deferred micro-task hook
(:meth:`repro.sim.simulation.Simulation.defer`), which runs at the same
simulated time as the triggering event and never perturbs the
``(time, seq)`` event order — executions are event-for-event identical to
eager decoding.

Both caches are LRU-bounded: scenario sweeps reuse a small working set of
values, while long randomized workloads with unique values stay within a
predictable memory budget.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Iterable, List, Sequence, Tuple

from repro.erasure.mds import CodedElement, MDSCode

#: Default bound on memoized values per encoder.
DEFAULT_ENCODER_CAPACITY = 1024

#: Default bound on memoized reconstructions per decoder.
DEFAULT_DECODER_CAPACITY = 1024


class CachedEncoder:
    """Memoizing ``encode`` wrapper around an :class:`MDSCode`."""

    def __init__(self, code: MDSCode, capacity: int = DEFAULT_ENCODER_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("encoder capacity must be at least 1")
        self.code = code
        self.capacity = capacity
        self._cache: "OrderedDict[bytes, List[CodedElement]]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def encode(self, value: bytes) -> List[CodedElement]:
        """Encode ``value``, serving repeats from the cache."""
        cached = self._cache.get(value)
        if cached is not None:
            self.hits += 1
            self._cache.move_to_end(value)
            return cached
        self.misses += 1
        elements = self.code.encode(value)
        self._insert(value, elements)
        return elements

    def warm(self, values: Iterable[bytes]) -> int:
        """Pre-encode a batch of values with one wide matmul.

        Duplicates and already-cached values are skipped, and the batch is
        capped at the cache capacity — encoding more would only evict the
        excess again before it is ever served, doubling the work and
        spiking memory with one wide stripe matrix per surplus value.
        Returns the number of values actually encoded.
        """
        fresh = [v for v in dict.fromkeys(values) if v not in self._cache]
        fresh = fresh[: self.capacity]
        if not fresh:
            return 0
        for value, elements in zip(fresh, self.code.encode_many(fresh)):
            self._insert(value, elements)
        return len(fresh)

    def encode_many(self, values: Sequence[bytes]) -> List[List[CodedElement]]:
        """Encode a batch, serving repeats from the cache.

        Distinct uncached values go through the code's batched
        :meth:`~repro.erasure.mds.MDSCode.encode_many` in one call (one
        fused stripe matmul for same-sized values).  Hit/miss accounting
        matches the eager loop: the first occurrence of an uncached value
        is a miss, duplicates within the batch are hits.
        """
        out: List[List[CodedElement]] = [None] * len(values)  # type: ignore[list-item]
        miss_positions: "OrderedDict[bytes, List[int]]" = OrderedDict()
        for i, value in enumerate(values):
            cached = self._cache.get(value)
            if cached is not None:
                self.hits += 1
                self._cache.move_to_end(value)
                out[i] = cached
            else:
                miss_positions.setdefault(value, []).append(i)
        if miss_positions:
            fresh = list(miss_positions)
            self.misses += len(fresh)
            self.hits += sum(len(p) - 1 for p in miss_positions.values())
            for value, elements in zip(fresh, self.code.encode_many(fresh)):
                self._insert(value, elements)
                for i in miss_positions[value]:
                    out[i] = elements
        return out

    def _insert(self, value: bytes, elements: List[CodedElement]) -> None:
        self._cache[value] = elements
        if len(self._cache) > self.capacity:
            self._cache.popitem(last=False)

    def stats(self) -> dict:
        """Hit/miss/occupancy counters (benchmarks and tests read these)."""
        return {"hits": self.hits, "misses": self.misses, "entries": len(self._cache)}

    def __len__(self) -> int:
        return len(self._cache)

    def __contains__(self, value: bytes) -> bool:
        return value in self._cache


# ----------------------------------------------------------------------
# read-side decode cache + per-drain batcher
# ----------------------------------------------------------------------
#: A decode job: the protocol tag being reconstructed plus the coded
#: elements collected for it.
DecodeJob = Tuple[object, Sequence[CodedElement]]


class CachedDecoder:
    """Memoizing ``decode`` wrapper around an :class:`MDSCode`.

    Keys are ``(tag, element fingerprint)`` where the fingerprint is the
    sorted ``(index, data)`` pairs of the supplied elements — two reads
    hit the same entry only when they reconstruct from byte-identical
    inputs, so a cache hit is always the exact value an eager decode
    would have produced (including the duplicate-conflict validation:
    conflicting element sets have distinct fingerprints and miss).

    ``max_errors > 0`` switches the decode primitive to the
    errors-and-erasures decoder (SODAerr's ``Phi^-1_err``), which is the
    single most expensive per-read operation in the repository — its
    memoization is what closes the SODAerr/SODA long-run throughput gap.
    """

    def __init__(
        self,
        code: MDSCode,
        capacity: int = DEFAULT_DECODER_CAPACITY,
        *,
        max_errors: int = 0,
    ) -> None:
        if capacity < 1:
            raise ValueError("decoder capacity must be at least 1")
        if max_errors < 0:
            raise ValueError("max_errors must be non-negative")
        self.code = code
        self.capacity = capacity
        self.max_errors = max_errors
        self._cache: "OrderedDict[tuple, bytes]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def _key(tag: object, elements: Sequence[CodedElement]) -> tuple:
        return (tag, tuple(sorted((el.index, el.data) for el in elements)))

    def _decode_one(self, elements: Sequence[CodedElement]) -> bytes:
        if self.max_errors:
            return self.code.decode_with_errors(elements, max_errors=self.max_errors)
        return self.code.decode(elements)

    def decode(self, tag: object, elements: Sequence[CodedElement]) -> bytes:
        """Reconstruct ``tag``'s value, serving repeats from the cache."""
        key = self._key(tag, elements)
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            self._cache.move_to_end(key)
            return cached
        self.misses += 1
        value = self._decode_one(elements)
        self._insert(key, value)
        return value

    def decode_many(self, jobs: Sequence[DecodeJob]) -> List[bytes]:
        """Decode a batch of jobs; cache misses go through the code's
        batched :meth:`~repro.erasure.mds.MDSCode.decode_many` in one call
        (the errors-and-erasures decoder has no batched kernel; its jobs
        are decoded per-set but still memoized)."""
        values: List[bytes] = [b""] * len(jobs)
        miss_slots: List[Tuple[int, tuple]] = []
        miss_sets: List[Sequence[CodedElement]] = []
        for i, (tag, elements) in enumerate(jobs):
            key = self._key(tag, elements)
            cached = self._cache.get(key)
            if cached is not None:
                self.hits += 1
                self._cache.move_to_end(key)
                values[i] = cached
            else:
                miss_slots.append((i, key))
                miss_sets.append(elements)
        if miss_sets:
            self.misses += len(miss_sets)
            if self.max_errors:
                decoded = [self._decode_one(elements) for elements in miss_sets]
            else:
                decoded = self.code.decode_many(miss_sets)
            for (i, key), value in zip(miss_slots, decoded):
                values[i] = value
                self._insert(key, value)
        return values

    def _insert(self, key: tuple, value: bytes) -> None:
        self._cache[key] = value
        if len(self._cache) > self.capacity:
            self._cache.popitem(last=False)

    def stats(self) -> dict:
        """Hit/miss/occupancy counters (benchmarks and tests read these)."""
        return {"hits": self.hits, "misses": self.misses, "entries": len(self._cache)}

    def __len__(self) -> int:
        return len(self._cache)


class ReadDecodeBatcher:
    """Collects read decodes becoming ready in one event-loop drain.

    Readers submit ``(tag, elements, continuation)`` instead of decoding
    inline; the batcher arms one deferred micro-task per drain and flushes
    every submission through a single :meth:`CachedDecoder.decode_many`
    call, then runs the continuations in submission order.  Because the
    flush executes at the same simulated time as the triggering event and
    before the next event is popped, the observable execution — message
    order, RNG stream, history timestamps — is identical to eager
    decoding; only the decode work itself is batched and memoized.

    Today one delivery event completes at most one read, so a drain's
    batch is typically a single job and the throughput win comes from the
    memoization; the per-drain collection point is what lets any future
    multi-completion event (or a fused multi-object drain) widen the
    ``decode_many`` batch without touching the readers again.
    """

    def __init__(
        self,
        decoder: CachedDecoder,
        defer: Callable[[Callable[[], None]], None],
    ) -> None:
        self.decoder = decoder
        self._defer = defer
        self._pending: List[Tuple[object, Sequence[CodedElement], Callable[[bytes], None]]] = []
        self._armed = False
        #: Flush/batch counters (benchmarks and tests read these).
        self.flushes = 0
        self.submitted = 0

    def submit(
        self,
        tag: object,
        elements: Sequence[CodedElement],
        continuation: Callable[[bytes], None],
    ) -> None:
        """Queue one decode; ``continuation(value)`` runs at flush time."""
        self._pending.append((tag, elements, continuation))
        self.submitted += 1
        if not self._armed:
            self._armed = True
            self._defer(self._flush)

    def _flush(self) -> None:
        self._armed = False
        pending, self._pending = self._pending, []
        if not pending:
            return
        self.flushes += 1
        values = self.decoder.decode_many(
            [(tag, elements) for tag, elements, _ in pending]
        )
        for (_, _, continuation), value in zip(pending, values):
            continuation(value)

    def stats(self) -> dict:
        """Submission/flush counters (benchmarks and tests read these)."""
        return {"submitted": self.submitted, "flushes": self.flushes}


# ----------------------------------------------------------------------
# write-side per-drain encode batcher
# ----------------------------------------------------------------------
class WriteEncodeBatcher:
    """Collects writer/server encodes issued in one event-loop drain.

    The write-side mirror of :class:`ReadDecodeBatcher`: instead of
    encoding inline, a writer (CAS/CASGC pre-write) or dispersal server
    (SODA/SODAerr MD-VALUE) submits ``(value, continuation)``; the batcher
    arms one deferred micro-task per drain and flushes every submission
    through a single :meth:`CachedEncoder.encode_many` call — one fused
    stripe matmul when the batch's values share a size — then runs the
    continuations in submission order.

    Determinism: at every eager encode site the encode and the sends that
    depend on its elements are the *last* actions of the message handler,
    so deferring them as a unit to the drain flush (same simulated time,
    before the next event pops, FIFO across submitters) preserves the
    exact send order and therefore the RNG delay stream — executions are
    event-for-event identical, enforced by the golden-trace tests.  N
    concurrent writers landing in one drain cost one stripe encode
    instead of N table gathers.
    """

    def __init__(
        self,
        encoder: CachedEncoder,
        defer: Callable[[Callable[[], None]], None],
    ) -> None:
        self.encoder = encoder
        self._defer = defer
        self._pending: List[Tuple[bytes, Callable[[List[CodedElement]], None]]] = []
        self._armed = False
        #: Flush/batch counters (benchmarks and tests read these).
        self.flushes = 0
        self.submitted = 0

    def submit(
        self, value: bytes, continuation: Callable[[List[CodedElement]], None]
    ) -> None:
        """Queue one encode; ``continuation(elements)`` runs at flush time."""
        self._pending.append((value, continuation))
        self.submitted += 1
        if not self._armed:
            self._armed = True
            self._defer(self._flush)

    def _flush(self) -> None:
        self._armed = False
        pending, self._pending = self._pending, []
        if not pending:
            return
        self.flushes += 1
        batches = self.encoder.encode_many([value for value, _ in pending])
        for (_, continuation), elements in zip(pending, batches):
            continuation(elements)

    def stats(self) -> dict:
        """Submission/flush counters (benchmarks and tests read these)."""
        return {"submitted": self.submitted, "flushes": self.flushes}
