"""Erasure-coding substrate for the SODA reproduction.

The SODA and SODAerr algorithms (Konwar et al., IPDPS 2016) rely on an
``[n, k]`` Maximum Distance Separable (MDS) code: a value of one unit is
split into ``k`` elements, expanded into ``n`` coded elements of size
``1/k`` each, such that

* any ``k`` coded elements suffice to reconstruct the value (erasure-only
  decoding, used by SODA), and
* any ``k + 2e`` coded elements of which at most ``e`` are silently
  corrupted suffice to reconstruct the value (errors-and-erasures decoding,
  used by SODAerr).

This package implements everything needed from scratch:

* :mod:`repro.erasure.gf` — arithmetic in GF(2^8), with three
  byte-identical bulk-kernel backends (full-table numpy gathers, 4-bit
  split tables, compiled C kernels) selected per field instance or
  process-wide via ``REPRO_GF_BACKEND`` / the ``--gf-backend`` CLI flag.
* :mod:`repro.erasure.gf_native` — the optional cffi-compiled kernels
  behind the ``native`` backend (graceful availability probing; pure
  numpy remains the always-on fallback).
* :mod:`repro.erasure.poly` — polynomials over GF(2^8).
* :mod:`repro.erasure.matrix` — matrices over GF(2^8) (inversion, solving).
* :mod:`repro.erasure.rs` — a classical Reed–Solomon codec with systematic
  encoding, erasure decoding from any ``k`` symbols and Berlekamp–Massey /
  Forney errors-and-erasures decoding.
* :mod:`repro.erasure.vandermonde` — an alternative matrix-based MDS
  backend (systematic Vandermonde generator matrix), used to cross-check
  the Reed–Solomon implementation and as a simple erasure-only code.
* :mod:`repro.erasure.mds` — the :class:`~repro.erasure.mds.MDSCode`
  interface shared by all protocol implementations, including the batched
  ``encode_many`` / ``decode_many`` pipeline.
* :mod:`repro.erasure.linear` — shared matrix-code machinery (one-matmul
  encoding, LRU-cached erasure decoding, wide-stripe batch variants).
* :mod:`repro.erasure.batch` — the memoizing/batch-warming
  :class:`~repro.erasure.batch.CachedEncoder` shared by a cluster's
  servers, the read-side :class:`~repro.erasure.batch.CachedDecoder` /
  :class:`~repro.erasure.batch.ReadDecodeBatcher` pair and the write-side
  :class:`~repro.erasure.batch.WriteEncodeBatcher` (one fused stripe
  encode per event-loop drain).
* :mod:`repro.erasure.replication` — the trivial ``[n, 1]`` replication
  "code" used by the ABD baseline.
"""

from repro.erasure.batch import (
    CachedDecoder,
    CachedEncoder,
    ReadDecodeBatcher,
    WriteEncodeBatcher,
)
from repro.erasure.gf import (
    GF256,
    GF_BACKENDS,
    available_backends,
    default_backend,
    default_field,
    set_default_backend,
)
from repro.erasure.linear import LinearCode
from repro.erasure.mds import CodedElement, MDSCode, DecodingError
from repro.erasure.rs import ReedSolomonCode
from repro.erasure.vandermonde import VandermondeCode
from repro.erasure.replication import ReplicationCode

__all__ = [
    "GF256",
    "GF_BACKENDS",
    "available_backends",
    "default_backend",
    "default_field",
    "set_default_backend",
    "CachedDecoder",
    "CachedEncoder",
    "ReadDecodeBatcher",
    "WriteEncodeBatcher",
    "CodedElement",
    "LinearCode",
    "MDSCode",
    "DecodingError",
    "ReedSolomonCode",
    "VandermondeCode",
    "ReplicationCode",
]
