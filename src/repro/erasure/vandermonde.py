"""Matrix-based MDS code with a systematic Vandermonde generator matrix.

This backend implements the same :class:`~repro.erasure.mds.MDSCode`
interface as :class:`~repro.erasure.rs.ReedSolomonCode` but performs all
decoding by linear algebra over GF(2^8):

* erasure-only decoding solves a ``k x k`` system for any ``k`` available
  elements (exactly like the Reed–Solomon fast path);
* errors-and-erasures decoding uses a combinatorial decode-and-verify
  strategy: decode from a candidate ``k``-subset, re-encode, and accept the
  candidate iff it agrees with at least ``|available| - e`` of the available
  elements.  For an MDS code this threshold uniquely identifies the true
  value when at most ``e`` elements are corrupted.

The combinatorial decoder is exponential in ``e`` in the worst case, but
``e`` is a small constant in the SODAerr setting (the paper's motivating
example uses one or two error-prone disks); it mainly serves as an
independent cross-check of the algebraic Reed–Solomon decoder in the
property-based tests.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.erasure.gf import GF256, default_field
from repro.erasure.matrix import gauss_jordan_invert, systematic_generator
from repro.erasure.mds import CodedElement, DecodingError, MDSCode


class VandermondeCode(MDSCode):
    """A systematic ``[n, k]`` MDS code built from a Vandermonde matrix."""

    def __init__(self, n: int, k: int, field: GF256 | None = None) -> None:
        super().__init__(n, k)
        if n > 255:
            raise ValueError(f"GF(2^8) Vandermonde codes support n <= 255, got {n}")
        self.field = field or default_field()
        # (k x n) generator; transpose gives the (n x k) encode matrix.
        self._generator = systematic_generator(self.field, n, k)
        self._encode_matrix = self._generator.T.copy()
        self._decode_cache: Dict[Tuple[int, ...], np.ndarray] = {}

    # ------------------------------------------------------------------
    # encoding / erasure decoding
    # ------------------------------------------------------------------
    def encode(self, value: bytes) -> List[CodedElement]:
        message = self._frame(value)
        codeword = self.field.matmul(self._encode_matrix, message)
        return [
            CodedElement(index=i, data=codeword[i].tobytes()) for i in range(self.n)
        ]

    def decode(self, elements: Iterable[CodedElement]) -> bytes:
        available = self._collect(elements)
        if len(available) < self.k:
            raise DecodingError(
                f"need at least k={self.k} coded elements, got {len(available)}"
            )
        indices = tuple(sorted(available))[: self.k]
        rows = self._rows_for(available, indices)
        inverse = self._decode_matrix(indices)
        message = self.field.matmul(inverse, rows)
        return self._unframe(message)

    def _decode_matrix(self, indices: Tuple[int, ...]) -> np.ndarray:
        cached = self._decode_cache.get(indices)
        if cached is None:
            sub = self._encode_matrix[list(indices), :]
            cached = gauss_jordan_invert(self.field, sub)
            self._decode_cache[indices] = cached
        return cached

    def _rows_for(
        self, available: Dict[int, bytes], indices: Tuple[int, ...]
    ) -> np.ndarray:
        sizes = {len(d) for d in available.values()}
        if len(sizes) != 1:
            raise DecodingError(f"coded elements have inconsistent sizes: {sizes}")
        stripe = sizes.pop()
        rows = np.zeros((len(indices), stripe), dtype=np.uint8)
        for r, idx in enumerate(indices):
            rows[r] = np.frombuffer(available[idx], dtype=np.uint8)
        return rows

    # ------------------------------------------------------------------
    # errors-and-erasures decoding (combinatorial decode-and-verify)
    # ------------------------------------------------------------------
    def decode_with_errors(
        self, elements: Iterable[CodedElement], max_errors: int
    ) -> bytes:
        if max_errors < 0:
            raise ValueError("max_errors must be non-negative")
        available = self._collect(elements)
        if len(available) < self.k + 2 * max_errors:
            raise DecodingError(
                f"need at least k + 2e = {self.k + 2 * max_errors} elements, "
                f"got {len(available)}"
            )
        if max_errors == 0:
            return self.decode([CodedElement(i, d) for i, d in available.items()])
        bad = [i for i in available if not 0 <= i < self.n]
        if bad:
            raise DecodingError(f"element indices out of range [0, {self.n}): {bad}")

        indices = sorted(available)
        threshold = len(indices) - max_errors
        for subset in combinations(indices, self.k):
            candidate_rows = self._rows_for(available, subset)
            inverse = self._decode_matrix(tuple(subset))
            message = self.field.matmul(inverse, candidate_rows)
            codeword = self.field.matmul(self._encode_matrix, message)
            agreements = sum(
                1
                for idx in indices
                if codeword[idx].tobytes() == available[idx]
            )
            if agreements >= threshold:
                return self._unframe(message)
        raise DecodingError(
            f"no candidate decoding agrees with at least {threshold} of the "
            f"{len(indices)} supplied elements (more than {max_errors} errors?)"
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def generator_matrix(self) -> np.ndarray:
        """The ``k x n`` systematic generator matrix."""
        return self._generator.copy()
