"""Matrix-based MDS code with a systematic Vandermonde generator matrix.

This backend implements the same :class:`~repro.erasure.mds.MDSCode`
interface as :class:`~repro.erasure.rs.ReedSolomonCode` but performs all
decoding by linear algebra over GF(2^8):

* erasure-only decoding solves a ``k x k`` system for any ``k`` available
  elements (exactly like the Reed–Solomon fast path);
* errors-and-erasures decoding uses a combinatorial decode-and-verify
  strategy: decode from a candidate ``k``-subset, re-encode, and accept the
  candidate iff it agrees with at least ``|available| - e`` of the available
  elements.  For an MDS code this threshold uniquely identifies the true
  value when at most ``e`` elements are corrupted.

The combinatorial decoder is exponential in ``e`` in the worst case, but
``e`` is a small constant in the SODAerr setting (the paper's motivating
example uses one or two error-prone disks); it mainly serves as an
independent cross-check of the algebraic Reed–Solomon decoder in the
property-based tests.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, Iterable, Tuple

import numpy as np

from repro.erasure.gf import GF256, default_field
from repro.erasure.linear import DEFAULT_DECODE_CACHE_SIZE, LinearCode
from repro.erasure.matrix import systematic_generator
from repro.erasure.mds import CodedElement, DecodingError


class VandermondeCode(LinearCode):
    """A systematic ``[n, k]`` MDS code built from a Vandermonde matrix.

    Encoding, erasure decoding and the batched encode_many/decode_many
    pipeline come from :class:`~repro.erasure.linear.LinearCode`; this class
    adds only the generator construction and the combinatorial
    errors-and-erasures decoder.
    """

    def __init__(
        self,
        n: int,
        k: int,
        field: GF256 | None = None,
        *,
        decode_cache_size: int = DEFAULT_DECODE_CACHE_SIZE,
    ) -> None:
        super().__init__(n, k)
        if n > 255:
            raise ValueError(f"GF(2^8) Vandermonde codes support n <= 255, got {n}")
        field = field or default_field()
        # (k x n) generator; transpose gives the (n x k) encode matrix.
        self._generator = systematic_generator(field, n, k)
        self._init_linear(
            field,
            self._generator.T.copy(),
            decode_cache_size=decode_cache_size,
        )

    def _rows_for(
        self, available: Dict[int, bytes], indices: Tuple[int, ...]
    ) -> np.ndarray:
        return self._gather_rows(available, indices, self._stripe_length(available))

    # ------------------------------------------------------------------
    # errors-and-erasures decoding (combinatorial decode-and-verify)
    # ------------------------------------------------------------------
    def decode_with_errors(
        self, elements: Iterable[CodedElement], max_errors: int
    ) -> bytes:
        if max_errors < 0:
            raise ValueError("max_errors must be non-negative")
        available = self._collect(elements)
        if len(available) < self.k + 2 * max_errors:
            raise DecodingError(
                f"need at least k + 2e = {self.k + 2 * max_errors} elements, "
                f"got {len(available)}"
            )
        if max_errors == 0:
            return self.decode([CodedElement(i, d) for i, d in available.items()])
        self._check_indices(available)

        indices = sorted(available)
        threshold = len(indices) - max_errors
        for subset in combinations(indices, self.k):
            candidate_rows = self._rows_for(available, subset)
            inverse = self._decode_matrix(tuple(subset))
            message = self.field.matmul(inverse, candidate_rows)
            codeword = self.field.matmul(self._encode_matrix, message)
            agreements = sum(
                1
                for idx in indices
                if codeword[idx].tobytes() == available[idx]
            )
            if agreements >= threshold:
                return self._unframe(message)
        raise DecodingError(
            f"no candidate decoding agrees with at least {threshold} of the "
            f"{len(indices)} supplied elements (more than {max_errors} errors?)"
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def generator_matrix(self) -> np.ndarray:
        """The ``k x n`` systematic generator matrix."""
        return self._generator.copy()
