"""Matrix algebra over GF(2^8).

Used for the Vandermonde-based MDS backend (systematic generator matrices)
and for the erasure-only "solve a k x k system" decoding path of the
Reed–Solomon code.  Matrices are numpy ``uint8`` arrays; all arithmetic is
delegated to :class:`repro.erasure.gf.GF256`.
"""

from __future__ import annotations

import numpy as np

from repro.erasure.gf import GF256


class SingularMatrixError(ValueError):
    """Raised when a matrix that must be invertible is singular."""


def identity(n: int) -> np.ndarray:
    """The n x n identity matrix over GF(2^8)."""
    return np.eye(n, dtype=np.uint8)


def vandermonde(field: GF256, rows: int, cols: int, xs: list[int] | None = None) -> np.ndarray:
    """A ``rows x cols`` Vandermonde matrix ``V[i, j] = x_i^j``.

    Parameters
    ----------
    xs:
        Evaluation points; defaults to consecutive powers of the field
        generator (``alpha^0, alpha^1, ...``), which are pairwise distinct
        for ``rows <= 255`` and therefore yield an MDS generator matrix.
    """
    if xs is None:
        xs = [field.alpha_pow(i) for i in range(rows)]
    if len(xs) != rows:
        raise ValueError("need exactly one evaluation point per row")
    if len(set(xs)) != rows:
        raise ValueError("evaluation points must be pairwise distinct")
    V = np.zeros((rows, cols), dtype=np.uint8)
    for i, x in enumerate(xs):
        acc = 1
        for j in range(cols):
            V[i, j] = acc
            acc = field.mul(acc, x)
    return V


def gauss_jordan_invert(field: GF256, A: np.ndarray) -> np.ndarray:
    """Invert a square matrix by Gauss–Jordan elimination.

    Raises
    ------
    SingularMatrixError
        If the matrix is not invertible.
    """
    A = np.array(A, dtype=np.uint8, copy=True)
    n, m = A.shape
    if n != m:
        raise ValueError("only square matrices can be inverted")
    aug = np.concatenate([A, identity(n)], axis=1)
    for col in range(n):
        # Find a pivot.
        pivot_row = None
        for r in range(col, n):
            if aug[r, col] != 0:
                pivot_row = r
                break
        if pivot_row is None:
            raise SingularMatrixError(f"matrix is singular at column {col}")
        if pivot_row != col:
            aug[[col, pivot_row]] = aug[[pivot_row, col]]
        # Normalise the pivot row.
        pivot_inv = field.inv(int(aug[col, col]))
        aug[col] = field.scale_vec(aug[col], pivot_inv)
        # Eliminate the column everywhere else.
        for r in range(n):
            if r == col or aug[r, col] == 0:
                continue
            factor = int(aug[r, col])
            aug[r] ^= field.scale_vec(aug[col], factor)
    return aug[:, n:]


def solve(field: GF256, A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Solve ``A X = B`` for ``X`` where ``A`` is square and invertible.

    ``B`` may be a matrix (multiple right-hand sides); the value axis of an
    erasure-decoding problem is passed through as columns so the whole value
    is recovered with one inversion.
    """
    A_inv = gauss_jordan_invert(field, A)
    B = np.asarray(B, dtype=np.uint8)
    if B.ndim == 1:
        return field.matmul(A_inv, B[:, None])[:, 0]
    return field.matmul(A_inv, B)


def rank(field: GF256, A: np.ndarray) -> int:
    """Rank of a matrix over GF(2^8) (row echelon elimination)."""
    A = np.array(A, dtype=np.uint8, copy=True)
    rows, cols = A.shape
    r = 0
    for col in range(cols):
        if r >= rows:
            break
        pivot_row = None
        for i in range(r, rows):
            if A[i, col] != 0:
                pivot_row = i
                break
        if pivot_row is None:
            continue
        if pivot_row != r:
            A[[r, pivot_row]] = A[[pivot_row, r]]
        pivot_inv = field.inv(int(A[r, col]))
        A[r] = field.scale_vec(A[r], pivot_inv)
        for i in range(rows):
            if i != r and A[i, col] != 0:
                A[i] ^= field.scale_vec(A[r], int(A[i, col]))
        r += 1
    return r


def systematic_generator(field: GF256, n: int, k: int) -> np.ndarray:
    """A systematic ``k x n`` MDS generator matrix.

    Built from a ``n x k`` Vandermonde matrix ``V`` (with distinct
    evaluation points) by right-multiplying with the inverse of its first
    ``k`` rows, i.e. the returned matrix ``G`` (shape ``k x n``, column ``i``
    producing coded element ``i``) satisfies ``G[:, :k] = I`` and every
    ``k x k`` column submatrix is invertible.  This is the standard
    construction used by, e.g., classic RAID-6 style erasure coders.
    """
    if not (1 <= k <= n <= 255):
        raise ValueError(f"require 1 <= k <= n <= 255, got n={n} k={k}")
    V = vandermonde(field, n, k)  # n x k
    top = V[:k, :]
    top_inv = gauss_jordan_invert(field, top)
    encode_matrix = field.matmul(V, top_inv)  # n x k, first k rows identity
    return encode_matrix.T.copy()  # k x n
