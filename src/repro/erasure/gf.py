"""Arithmetic in the finite field GF(2^8).

The Reed–Solomon codes used throughout this reproduction operate symbol-wise
over GF(2^8) with the AES/Rijndael reduction polynomial
``x^8 + x^4 + x^3 + x + 1`` (0x11B).  The field is small enough that a full
256 x 256 multiplication table (64 KiB, built once per field instance) makes
every bulk operation a single numpy fancy-index gather — no zero masks, no
boolean temporaries — which is where virtually all of the CPU time goes.
Exp/log tables are kept alongside for division, powers and inverses.

Only one field size is needed by the paper (values are byte strings and each
coded element is a byte string), but the implementation is written against an
explicit primitive polynomial so alternative polynomials can be used in
tests.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, Sequence

import numpy as np

# Default primitive polynomial for GF(2^8): x^8 + x^4 + x^3 + x + 1.
DEFAULT_PRIMITIVE_POLY = 0x11B
#: The generator element used to build the exp/log tables.
DEFAULT_GENERATOR = 0x03

FIELD_SIZE = 256
ORDER = FIELD_SIZE - 1  # multiplicative group order


class GF256:
    """The finite field GF(2^8).

    Parameters
    ----------
    primitive_poly:
        Reduction polynomial (degree 8, expressed as an integer bit mask).
    generator:
        A primitive element; powers of it enumerate all non-zero field
        elements and define the exp/log tables.

    Notes
    -----
    Elements are plain Python ints (or numpy uint8 arrays for the
    vectorised operations) in ``range(256)``.  Addition and subtraction are
    both XOR.
    """

    __slots__ = (
        "primitive_poly",
        "generator",
        "exp",
        "log",
        "_inv",
        "_mul_table",
        "_mul_flat",
    )

    def __init__(
        self,
        primitive_poly: int = DEFAULT_PRIMITIVE_POLY,
        generator: int = DEFAULT_GENERATOR,
    ) -> None:
        if primitive_poly >> 8 != 1:
            raise ValueError(
                f"primitive polynomial must have degree 8, got {primitive_poly:#x}"
            )
        self.primitive_poly = primitive_poly
        self.generator = generator
        exp = np.zeros(2 * ORDER, dtype=np.uint8)
        log = np.zeros(FIELD_SIZE, dtype=np.int64)
        x = 1
        seen: set[int] = set()
        for i in range(ORDER):
            exp[i] = x
            log[x] = i
            seen.add(x)
            x = self._slow_mul(x, generator)
        if x != 1 or len(seen) != ORDER:
            raise ValueError(
                f"{generator:#x} is not a primitive element for polynomial "
                f"{primitive_poly:#x}"
            )
        # Duplicate the table so exp[a + b] never needs a modulo for a, b < ORDER.
        exp[ORDER:] = exp[:ORDER]
        self.exp = exp
        self.log = log
        inv = np.zeros(FIELD_SIZE, dtype=np.uint8)
        for a in range(1, FIELD_SIZE):
            inv[a] = exp[ORDER - log[a]]
        self._inv = inv
        # Full 256 x 256 product table (64 KiB).  Row/column 0 stay zero, so
        # the vectorised kernels need no zero masks at all: MUL[a, b] is the
        # product for every (a, b) pair, including zeros.
        mul_table = np.zeros((FIELD_SIZE, FIELD_SIZE), dtype=np.uint8)
        nz_log = log[1:]
        mul_table[1:, 1:] = exp[nz_log[:, None] + nz_log[None, :]]
        self._mul_table = mul_table
        # Flat view for 1D take-based gathers (row-major: index = a*256 + b).
        self._mul_flat = mul_table.reshape(-1)

    # ------------------------------------------------------------------
    # scalar operations
    # ------------------------------------------------------------------
    def _slow_mul(self, a: int, b: int) -> int:
        """Carry-less multiplication with reduction; used only to build tables."""
        result = 0
        while b:
            if b & 1:
                result ^= a
            b >>= 1
            a <<= 1
            if a & 0x100:
                a ^= self.primitive_poly
        return result

    @staticmethod
    def add(a: int, b: int) -> int:
        """Field addition (XOR)."""
        return a ^ b

    @staticmethod
    def sub(a: int, b: int) -> int:
        """Field subtraction (identical to addition in characteristic 2)."""
        return a ^ b

    def mul(self, a: int, b: int) -> int:
        """Field multiplication via the product table."""
        return int(self._mul_table[a, b])

    def div(self, a: int, b: int) -> int:
        """Field division ``a / b``; raises ``ZeroDivisionError`` if b == 0."""
        if b == 0:
            raise ZeroDivisionError("division by zero in GF(2^8)")
        if a == 0:
            return 0
        return int(self.exp[(int(self.log[a]) - int(self.log[b])) % ORDER])

    def inv(self, a: int) -> int:
        """Multiplicative inverse of ``a``; raises ``ZeroDivisionError`` for 0."""
        if a == 0:
            raise ZeroDivisionError("0 has no multiplicative inverse in GF(2^8)")
        return int(self._inv[a])

    def pow(self, a: int, exponent: int) -> int:
        """``a`` raised to an arbitrary (possibly negative) integer power."""
        if a == 0:
            if exponent == 0:
                return 1
            if exponent < 0:
                raise ZeroDivisionError("0 cannot be raised to a negative power")
            return 0
        e = (int(self.log[a]) * exponent) % ORDER
        return int(self.exp[e])

    def alpha_pow(self, exponent: int) -> int:
        """The generator raised to ``exponent`` (mod the group order)."""
        return int(self.exp[exponent % ORDER])

    # ------------------------------------------------------------------
    # vectorised operations on numpy uint8 arrays
    # ------------------------------------------------------------------
    def mul_vec(self, a: np.ndarray, b: np.ndarray | int) -> np.ndarray:
        """Element-wise product of two uint8 arrays (or array and scalar).

        A single gather into the (flattened) 256 x 256 product table; the
        index arrays broadcast against each other exactly like ``a * b``.
        """
        a = np.asarray(a, dtype=np.uint8)
        b = np.asarray(b, dtype=np.uint8)
        if a.shape != b.shape:
            a, b = np.broadcast_arrays(a, b)
        idx = a.astype(np.intp)
        idx <<= 8
        idx += b
        # mode="wrap" skips per-element bounds checks; indices built from two
        # uint8 operands are always within the 65536-entry table.
        return self._mul_flat.take(idx, mode="wrap")

    def scale_vec(self, a: np.ndarray, scalar: int) -> np.ndarray:
        """Multiply every element of ``a`` by a scalar (one row-table gather)."""
        a = np.asarray(a, dtype=np.uint8)
        return self._mul_table[scalar].take(a, mode="wrap")

    def matmul(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        """Matrix product over GF(2^8).

        ``A`` has shape ``(m, p)`` and ``B`` shape ``(p, q)``; the result has
        shape ``(m, q)``.  The inner accumulation is XOR.
        """
        A = np.asarray(A, dtype=np.uint8)
        B = np.asarray(B, dtype=np.uint8)
        if A.ndim != 2 or B.ndim != 2 or A.shape[1] != B.shape[0]:
            raise ValueError(f"incompatible shapes {A.shape} x {B.shape}")
        m, p = A.shape
        q = B.shape[1]
        out = np.zeros((m, q), dtype=np.uint8)
        mul_table = self._mul_table
        product = np.empty(q, dtype=np.uint8)
        # For typical code parameters m, p = n, k <= 255 while q (the value
        # axis) is long: m * p scalar-times-row products, each one a 1D take
        # from a 256-byte L1-resident table row, XOR-accumulated in place.
        # Scalar coefficients 0 and 1 shortcut the gather entirely — the
        # identity block of a systematic encode matrix is half its entries.
        for j in range(p):
            row = B[j]
            for i in range(m):
                coeff = A[i, j]
                if coeff == 0:
                    continue
                if coeff == 1:
                    np.bitwise_xor(out[i], row, out=out[i])
                    continue
                np.take(mul_table[coeff], row, out=product, mode="wrap")
                np.bitwise_xor(out[i], product, out=out[i])
        return out

    # ------------------------------------------------------------------
    # misc helpers
    # ------------------------------------------------------------------
    def dot(self, xs: Sequence[int], ys: Sequence[int]) -> int:
        """Inner product of two equal-length scalar sequences."""
        if len(xs) != len(ys):
            raise ValueError("dot product requires equal-length sequences")
        acc = 0
        for x, y in zip(xs, ys):
            acc ^= self.mul(x, y)
        return acc

    def elements(self) -> Iterable[int]:
        """Iterate over every field element (0..255)."""
        return range(FIELD_SIZE)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"GF256(primitive_poly={self.primitive_poly:#x}, generator={self.generator:#x})"


@lru_cache(maxsize=None)
def default_field() -> GF256:
    """A process-wide shared GF(2^8) instance with the default polynomial."""
    return GF256()
