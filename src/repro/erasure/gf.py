"""Arithmetic in the finite field GF(2^8).

The Reed–Solomon codes used throughout this reproduction operate symbol-wise
over GF(2^8) with the AES/Rijndael reduction polynomial
``x^8 + x^4 + x^3 + x + 1`` (0x11B).  The field is small enough that a full
256 x 256 multiplication table (64 KiB, built once per field instance) makes
every bulk operation a single numpy fancy-index gather — no zero masks, no
boolean temporaries — which is where virtually all of the CPU time goes.
Exp/log tables are kept alongside for division, powers and inverses.

Only one field size is needed by the paper (values are byte strings and each
coded element is a byte string), but the implementation is written against an
explicit primitive polynomial so alternative polynomials can be used in
tests.

Kernel backends
---------------
Each field instance carries one of three interchangeable bulk-kernel
backends — all byte-identical, differing only in how the per-coefficient
table product is computed:

``numpy``
    The always-on portable default: one 1D ``take`` per non-trivial
    coefficient against a 256-byte row of the full 64 KiB product table.
``split``
    4-bit split tables: the product ``a * b`` is split into
    ``a * (b & 0xF) ^ a * (b >> 4 << 4)`` (GF multiplication is linear over
    XOR), served from two 256 x 16 tables — an 8 KiB working set instead of
    64 KiB, at the cost of two gathers per coefficient.
``native``
    Compiled C kernels (:mod:`repro.erasure.gf_native`, built at runtime via
    cffi) consuming the same product table; uses a 16-lane ``pshufb``
    split-table product on SSSE3-capable x86-64 hosts and a scalar table
    walk elsewhere.  Requires cffi plus a C toolchain.

The process-wide default backend is resolved from the ``REPRO_GF_BACKEND``
environment variable (CLI flag ``--gf-backend`` sets it explicitly via
:func:`set_default_backend`); an env-selected ``native`` backend that cannot
build falls back to ``numpy`` with a warning, while an explicit
:func:`set_default_backend`/constructor request raises.
"""

from __future__ import annotations

import os
import warnings
from functools import lru_cache
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.erasure import gf_native

# Default primitive polynomial for GF(2^8): x^8 + x^4 + x^3 + x + 1.
DEFAULT_PRIMITIVE_POLY = 0x11B
#: The generator element used to build the exp/log tables.
DEFAULT_GENERATOR = 0x03

FIELD_SIZE = 256
ORDER = FIELD_SIZE - 1  # multiplicative group order

#: The interchangeable bulk-kernel backends (see the module docstring).
GF_BACKENDS = ("numpy", "split", "native")
#: Environment variable consulted by :func:`default_backend`.
BACKEND_ENV_VAR = "REPRO_GF_BACKEND"

_backend_override: Optional[str] = None


class GF256:
    """The finite field GF(2^8).

    Parameters
    ----------
    primitive_poly:
        Reduction polynomial (degree 8, expressed as an integer bit mask).
    generator:
        A primitive element; powers of it enumerate all non-zero field
        elements and define the exp/log tables.
    backend:
        Bulk-kernel backend for ``mul_vec``/``matmul``/``matmul_many`` —
        one of :data:`GF_BACKENDS`.  ``"native"`` raises ``RuntimeError``
        when the compiled kernels cannot be built on this host.

    Notes
    -----
    Elements are plain Python ints (or numpy uint8 arrays for the
    vectorised operations) in ``range(256)``.  Addition and subtraction are
    both XOR.
    """

    __slots__ = (
        "primitive_poly",
        "generator",
        "backend",
        "exp",
        "log",
        "_inv",
        "_mul_table",
        "_mul_flat",
        "_split_lo",
        "_split_hi",
        "_native",
    )

    def __init__(
        self,
        primitive_poly: int = DEFAULT_PRIMITIVE_POLY,
        generator: int = DEFAULT_GENERATOR,
        *,
        backend: str = "numpy",
    ) -> None:
        if primitive_poly >> 8 != 1:
            raise ValueError(
                f"primitive polynomial must have degree 8, got {primitive_poly:#x}"
            )
        if backend not in GF_BACKENDS:
            raise ValueError(
                f"unknown GF backend {backend!r}; expected one of {GF_BACKENDS}"
            )
        self.primitive_poly = primitive_poly
        self.generator = generator
        exp = np.zeros(2 * ORDER, dtype=np.uint8)
        log = np.zeros(FIELD_SIZE, dtype=np.int64)
        x = 1
        seen: set[int] = set()
        for i in range(ORDER):
            exp[i] = x
            log[x] = i
            seen.add(x)
            x = self._slow_mul(x, generator)
        if x != 1 or len(seen) != ORDER:
            raise ValueError(
                f"{generator:#x} is not a primitive element for polynomial "
                f"{primitive_poly:#x}"
            )
        # Duplicate the table so exp[a + b] never needs a modulo for a, b < ORDER.
        exp[ORDER:] = exp[:ORDER]
        self.exp = exp
        self.log = log
        inv = np.zeros(FIELD_SIZE, dtype=np.uint8)
        for a in range(1, FIELD_SIZE):
            inv[a] = exp[ORDER - log[a]]
        self._inv = inv
        # Full 256 x 256 product table (64 KiB).  Row/column 0 stay zero, so
        # the vectorised kernels need no zero masks at all: MUL[a, b] is the
        # product for every (a, b) pair, including zeros.
        mul_table = np.zeros((FIELD_SIZE, FIELD_SIZE), dtype=np.uint8)
        nz_log = log[1:]
        mul_table[1:, 1:] = exp[nz_log[:, None] + nz_log[None, :]]
        self._mul_table = mul_table
        # Flat view for 1D take-based gathers (row-major: index = a*256 + b).
        self._mul_flat = mul_table.reshape(-1)
        self.backend = backend
        # 4-bit split tables: SPLIT_LO[a, x] = a*x and SPLIT_HI[a, x] = a*(x<<4)
        # for x in 0..15 — just strided views copied out of the full table, so
        # they agree with it entry-for-entry by construction.
        if backend == "split":
            self._split_lo = np.ascontiguousarray(mul_table[:, :16])
            self._split_hi = np.ascontiguousarray(mul_table[:, ::16])
        else:
            self._split_lo = None
            self._split_hi = None
        # The compiled kernels consume self._mul_table directly, so their
        # products are the same table lookups the numpy backend gathers.
        self._native = gf_native.load() if backend == "native" else None

    # ------------------------------------------------------------------
    # scalar operations
    # ------------------------------------------------------------------
    def _slow_mul(self, a: int, b: int) -> int:
        """Carry-less multiplication with reduction; used only to build tables."""
        result = 0
        while b:
            if b & 1:
                result ^= a
            b >>= 1
            a <<= 1
            if a & 0x100:
                a ^= self.primitive_poly
        return result

    @staticmethod
    def add(a: int, b: int) -> int:
        """Field addition (XOR)."""
        return a ^ b

    @staticmethod
    def sub(a: int, b: int) -> int:
        """Field subtraction (identical to addition in characteristic 2)."""
        return a ^ b

    def mul(self, a: int, b: int) -> int:
        """Field multiplication via the product table."""
        return int(self._mul_table[a, b])

    def div(self, a: int, b: int) -> int:
        """Field division ``a / b``; raises ``ZeroDivisionError`` if b == 0."""
        if b == 0:
            raise ZeroDivisionError("division by zero in GF(2^8)")
        if a == 0:
            return 0
        return int(self.exp[(int(self.log[a]) - int(self.log[b])) % ORDER])

    def inv(self, a: int) -> int:
        """Multiplicative inverse of ``a``; raises ``ZeroDivisionError`` for 0."""
        if a == 0:
            raise ZeroDivisionError("0 has no multiplicative inverse in GF(2^8)")
        return int(self._inv[a])

    def pow(self, a: int, exponent: int) -> int:
        """``a`` raised to an arbitrary (possibly negative) integer power."""
        if a == 0:
            if exponent == 0:
                return 1
            if exponent < 0:
                raise ZeroDivisionError("0 cannot be raised to a negative power")
            return 0
        e = (int(self.log[a]) * exponent) % ORDER
        return int(self.exp[e])

    def alpha_pow(self, exponent: int) -> int:
        """The generator raised to ``exponent`` (mod the group order)."""
        return int(self.exp[exponent % ORDER])

    # ------------------------------------------------------------------
    # vectorised operations on numpy uint8 arrays
    # ------------------------------------------------------------------
    def mul_vec(self, a: np.ndarray, b: np.ndarray | int) -> np.ndarray:
        """Element-wise product of two uint8 arrays (or array and scalar).

        One gather into the (flattened) 256 x 256 product table on the
        default backend; the index arrays broadcast against each other
        exactly like ``a * b``.  The split backend does two 8 KiB-table
        gathers XORed together; the native backend calls the compiled
        table-walk kernel.  All three produce identical bytes.
        """
        a = np.asarray(a, dtype=np.uint8)
        b = np.asarray(b, dtype=np.uint8)
        if a.shape != b.shape:
            a, b = np.broadcast_arrays(a, b)
        if self.backend == "native":
            a = np.ascontiguousarray(a)
            b = np.ascontiguousarray(b)
            out = np.empty(a.shape, dtype=np.uint8)
            ffi, lib = self._native
            lib.gf_mul_vec(
                ffi.from_buffer(self._mul_table),
                ffi.from_buffer(a),
                ffi.from_buffer(b),
                ffi.from_buffer(out),
                a.size,
            )
            return out
        if self.backend == "split":
            idx = a.astype(np.intp)
            idx <<= 4
            lo = self._split_lo.reshape(-1).take(idx + (b & 0x0F), mode="wrap")
            hi = self._split_hi.reshape(-1).take(idx + (b >> 4), mode="wrap")
            return lo ^ hi
        idx = a.astype(np.intp)
        idx <<= 8
        idx += b
        # mode="wrap" skips per-element bounds checks; indices built from two
        # uint8 operands are always within the 65536-entry table.
        return self._mul_flat.take(idx, mode="wrap")

    def scale_vec(self, a: np.ndarray, scalar: int) -> np.ndarray:
        """Multiply every element of ``a`` by a scalar (one row-table gather)."""
        a = np.asarray(a, dtype=np.uint8)
        return self._mul_table[scalar].take(a, mode="wrap")

    def matmul(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        """Matrix product over GF(2^8).

        ``A`` has shape ``(m, p)`` and ``B`` shape ``(p, q)``; the result has
        shape ``(m, q)``.  The inner accumulation is XOR.
        """
        A = np.asarray(A, dtype=np.uint8)
        B = np.asarray(B, dtype=np.uint8)
        if A.ndim != 2 or B.ndim != 2 or A.shape[1] != B.shape[0]:
            raise ValueError(f"incompatible shapes {A.shape} x {B.shape}")
        if self.backend == "native":
            return self._matmul_native(A, B)
        if self.backend == "split":
            return self._matmul_split(A, B)
        return self._matmul_table(A, B)

    def _matmul_table(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        m, p = A.shape
        q = B.shape[1]
        out = np.zeros((m, q), dtype=np.uint8)
        mul_table = self._mul_table
        product = np.empty(q, dtype=np.uint8)
        # For typical code parameters m, p = n, k <= 255 while q (the value
        # axis) is long: m * p scalar-times-row products, each one a 1D take
        # from a 256-byte L1-resident table row, XOR-accumulated in place.
        # Scalar coefficients 0 and 1 shortcut the gather entirely — the
        # identity block of a systematic encode matrix is half its entries.
        for j in range(p):
            row = B[j]
            for i in range(m):
                coeff = A[i, j]
                if coeff == 0:
                    continue
                if coeff == 1:
                    np.bitwise_xor(out[i], row, out=out[i])
                    continue
                np.take(mul_table[coeff], row, out=product, mode="wrap")
                np.bitwise_xor(out[i], product, out=out[i])
        return out

    def _matmul_split(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        m, p = A.shape
        q = B.shape[1]
        out = np.zeros((m, q), dtype=np.uint8)
        lo_tab = self._split_lo
        hi_tab = self._split_hi
        # The 4-bit operand halves are shared by every coefficient touching a
        # given row of B, so they are materialised once per row, not per
        # (i, j) pair.  Each partial product XOR-accumulates independently —
        # out[i] ^= lo ^ hi needs no intermediate combine.
        b_lo = B & 0x0F
        b_hi = B >> 4
        product = np.empty(q, dtype=np.uint8)
        for j in range(p):
            row = B[j]
            row_lo = b_lo[j]
            row_hi = b_hi[j]
            for i in range(m):
                coeff = A[i, j]
                if coeff == 0:
                    continue
                if coeff == 1:
                    np.bitwise_xor(out[i], row, out=out[i])
                    continue
                np.take(lo_tab[coeff], row_lo, out=product, mode="wrap")
                np.bitwise_xor(out[i], product, out=out[i])
                np.take(hi_tab[coeff], row_hi, out=product, mode="wrap")
                np.bitwise_xor(out[i], product, out=out[i])
        return out

    def _matmul_native(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        m, p = A.shape
        q = B.shape[1]
        A = np.ascontiguousarray(A)
        B = np.ascontiguousarray(B)
        out = np.empty((m, q), dtype=np.uint8)
        ffi, lib = self._native
        lib.gf_matmul(
            ffi.from_buffer(A),
            ffi.from_buffer(self._mul_table),
            ffi.from_buffer(B),
            ffi.from_buffer(out),
            m,
            p,
            q,
        )
        return out

    def matmul_many(
        self,
        A: np.ndarray,
        stacked: np.ndarray,
        *,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Apply one matrix to a whole stripe of same-shape operands.

        ``A`` has shape ``(m, p)`` and ``stacked`` shape ``(batch, p, q)``;
        returns ``(batch, m, q)``.  The batch is laid out as one wide
        ``(p, batch * q)`` matrix — column-concatenation, the same layout
        ``LinearCode.encode_many`` used to build by hand — so the whole
        stripe costs one fused kernel pass instead of ``batch`` passes, and
        each slice of the result is byte-identical to ``matmul(A,
        stacked[b])`` because every output column depends only on its own
        input column.

        ``out``, when given, must be a C-contiguous ``(batch, m, q)`` uint8
        array; the result is written into it and it is returned.  Callers
        that encode stripes repeatedly (``LinearCode.encode_many``) pass a
        reused scratch buffer so steady-state stripes run in warm pages
        instead of paying a multi-megabyte allocation per drain.
        """
        A = np.asarray(A, dtype=np.uint8)
        stacked = np.asarray(stacked, dtype=np.uint8)
        if A.ndim != 2 or stacked.ndim != 3 or A.shape[1] != stacked.shape[1]:
            raise ValueError(
                f"incompatible shapes {A.shape} x {stacked.shape}; expected "
                "(m, p) x (batch, p, q)"
            )
        batch, p, q = stacked.shape
        m = A.shape[0]
        if out is not None and (
            out.shape != (batch, m, q)
            or out.dtype != np.uint8
            or not out.flags["C_CONTIGUOUS"]
        ):
            raise ValueError(
                f"out must be C-contiguous uint8 of shape {(batch, m, q)}"
            )
        if batch == 0:
            return np.zeros((0, m, q), dtype=np.uint8) if out is None else out
        if self.backend == "native":
            # The compiled kernel has no per-call setup worth amortising, so
            # the stripe is dispatched slice-by-slice straight into the
            # (batch, m, q) output — contiguous in, contiguous out, zero
            # layout copies.  (The wide path below would pay two full-stripe
            # transpose copies just to feed the kernel one call.)
            A = np.ascontiguousarray(A)
            stacked = np.ascontiguousarray(stacked)
            if out is None:
                out = np.empty((batch, m, q), dtype=np.uint8)
            ffi, lib = self._native
            a_buf = ffi.from_buffer(A)
            table = ffi.from_buffer(self._mul_table)
            for b in range(batch):
                lib.gf_matmul(
                    a_buf,
                    table,
                    ffi.from_buffer(stacked[b]),
                    ffi.from_buffer(out[b]),
                    m,
                    p,
                    q,
                )
            return out
        wide = stacked.transpose(1, 0, 2).reshape(p, batch * q)
        product = self.matmul(A, wide)
        stripes = product.reshape(m, batch, q).transpose(1, 0, 2)
        if out is None:
            return np.ascontiguousarray(stripes)
        np.copyto(out, stripes)
        return out

    # ------------------------------------------------------------------
    # misc helpers
    # ------------------------------------------------------------------
    def dot(self, xs: Sequence[int], ys: Sequence[int]) -> int:
        """Inner product of two equal-length scalar sequences."""
        if len(xs) != len(ys):
            raise ValueError("dot product requires equal-length sequences")
        acc = 0
        for x, y in zip(xs, ys):
            acc ^= self.mul(x, y)
        return acc

    def elements(self) -> Iterable[int]:
        """Iterate over every field element (0..255)."""
        return range(FIELD_SIZE)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"GF256(primitive_poly={self.primitive_poly:#x}, "
            f"generator={self.generator:#x}, backend={self.backend!r})"
        )


def available_backends() -> List[str]:
    """The subset of :data:`GF_BACKENDS` usable on this host."""
    return [
        name
        for name in GF_BACKENDS
        if name != "native" or gf_native.is_available()
    ]


def set_default_backend(backend: Optional[str]) -> None:
    """Pin the process-wide default backend (``None`` restores env/default).

    An explicit request for ``"native"`` raises ``RuntimeError`` when the
    compiled kernels cannot be built, unlike the env-var path which falls
    back to ``numpy`` with a warning.
    """
    global _backend_override
    if backend is not None:
        if backend not in GF_BACKENDS:
            raise ValueError(
                f"unknown GF backend {backend!r}; expected one of {GF_BACKENDS}"
            )
        if backend == "native":
            error = gf_native.availability_error()
            if error is not None:
                raise RuntimeError(f"native GF backend unavailable: {error}")
    _backend_override = backend


def default_backend() -> str:
    """Resolve the backend new ``default_field()`` instances use.

    Precedence: :func:`set_default_backend` override, then the
    ``REPRO_GF_BACKEND`` environment variable, then ``"numpy"``.
    """
    if _backend_override is not None:
        return _backend_override
    env = os.environ.get(BACKEND_ENV_VAR, "").strip().lower()
    if not env:
        return "numpy"
    if env not in GF_BACKENDS:
        raise ValueError(
            f"{BACKEND_ENV_VAR}={env!r} is not a GF backend; "
            f"expected one of {GF_BACKENDS}"
        )
    if env == "native":
        error = gf_native.availability_error()
        if error is not None:
            warnings.warn(
                f"{BACKEND_ENV_VAR}=native requested but the compiled backend "
                f"is unavailable ({error}); falling back to the numpy kernels",
                RuntimeWarning,
                stacklevel=2,
            )
            return "numpy"
    return env


@lru_cache(maxsize=None)
def _field_for_backend(backend: str) -> GF256:
    return GF256(backend=backend)


def default_field() -> GF256:
    """A process-wide shared GF(2^8) instance with the default polynomial.

    One instance is cached per backend, so flipping the default backend
    mid-process (tests, CLI) hands out the matching cached field without
    rebuilding tables for backends already seen.
    """
    return _field_for_backend(default_backend())
