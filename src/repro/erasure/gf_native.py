"""Optional compiled GF(2^8) kernels (the ``native`` backend).

This module builds a tiny C extension at runtime via :mod:`cffi` and exposes
it to :class:`repro.erasure.gf.GF256` behind two entry points:

* :func:`load` — compile (or reuse a cached build of) the extension and
  return its ``(ffi, lib)`` pair; raises ``RuntimeError`` when cffi or a C
  toolchain is unavailable.
* :func:`is_available` / :func:`availability_error` — probe without raising,
  so callers (env-var backend selection, CI build steps, skipif marks) can
  fall back to the pure-numpy kernels cleanly.

The C kernels consume the exact same 256 x 256 product table the numpy
backend gathers from, so every backend is byte-identical by construction:
``gf_matmul`` walks the (coefficient, row) loop with the same 0/1 shortcuts
as ``GF256.matmul``, replacing the per-row numpy ``take`` with either a
scalar table walk or — on x86-64 hosts with SSSE3 — a 16-lane ``pshufb``
split-table product (two 16-byte lane tables derived per coefficient from
the full table row; ``lo[x] = row[x]``, ``hi[x] = row[x << 4]``, product =
``lo[b & 0xF] ^ hi[b >> 4]`` by linearity of GF multiplication over XOR).
The SIMD path is compiled only under ``__x86_64__`` + GCC/Clang and selected
at runtime via ``__builtin_cpu_supports``; every other host uses the scalar
loop, still well ahead of a Python-side gather for matmul shapes.

Builds land in a content-addressed cache directory (hash of the C source)
under the system temp dir — override with ``REPRO_GF_NATIVE_CACHE`` — so the
~2 s compile is paid once per source revision per machine, not per process.
"""

from __future__ import annotations

import hashlib
import importlib.util
import os
import shutil
import sys
import tempfile
import threading
from typing import Optional, Tuple

MODULE_NAME = "_repro_gf_native"

CDEF = """
void gf_matmul(const unsigned char *A, const unsigned char *table,
               const unsigned char *B, unsigned char *out,
               long m, long p, long q);
void gf_mul_vec(const unsigned char *table, const unsigned char *a,
                const unsigned char *b, unsigned char *out, long n);
"""

C_SOURCE = r"""
#include <stdint.h>
#include <string.h>

static void row_xor(uint8_t *dst, const uint8_t *src, long q)
{
    for (long i = 0; i < q; i++)
        dst[i] ^= src[i];
}

static void row_mul_xor_scalar(uint8_t *dst, const uint8_t *src,
                               const uint8_t *row, long q)
{
    for (long i = 0; i < q; i++)
        dst[i] ^= row[src[i]];
}

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>

/* 16-lane split-table product: two pshufb gathers + one XOR per 16 bytes.
 * The lane tables are the coefficient's table row sampled at x and x<<4;
 * row[b] == row[b & 0xF] ^ row[(b >> 4) << 4] by GF-linearity over XOR,
 * so the SIMD product is bit-identical to the scalar table walk. */
__attribute__((target("ssse3")))
static void row_mul_xor_ssse3(uint8_t *dst, const uint8_t *src,
                              const uint8_t *row, long q)
{
    uint8_t lo_tab[16], hi_tab[16];
    for (int x = 0; x < 16; x++) {
        lo_tab[x] = row[x];
        hi_tab[x] = row[x << 4];
    }
    const __m128i tlo = _mm_loadu_si128((const __m128i *)lo_tab);
    const __m128i thi = _mm_loadu_si128((const __m128i *)hi_tab);
    const __m128i mask = _mm_set1_epi8(0x0f);
    long i = 0;
    for (; i + 16 <= q; i += 16) {
        __m128i b = _mm_loadu_si128((const __m128i *)(src + i));
        __m128i lo = _mm_and_si128(b, mask);
        __m128i hi = _mm_and_si128(_mm_srli_epi16(b, 4), mask);
        __m128i prod = _mm_xor_si128(_mm_shuffle_epi8(tlo, lo),
                                     _mm_shuffle_epi8(thi, hi));
        __m128i d = _mm_loadu_si128((const __m128i *)(dst + i));
        _mm_storeu_si128((__m128i *)(dst + i), _mm_xor_si128(d, prod));
    }
    for (; i < q; i++)
        dst[i] ^= row[src[i]];
}

static int have_ssse3(void)
{
    return __builtin_cpu_supports("ssse3");
}
#else
static int have_ssse3(void)
{
    return 0;
}
#endif

void gf_matmul(const unsigned char *A, const unsigned char *table,
               const unsigned char *B, unsigned char *out,
               long m, long p, long q)
{
    memset(out, 0, (size_t)m * (size_t)q);
    const int fast = have_ssse3();
    for (long j = 0; j < p; j++) {
        const uint8_t *brow = B + j * q;
        for (long i = 0; i < m; i++) {
            const uint8_t coeff = A[i * p + j];
            if (coeff == 0)
                continue;
            uint8_t *orow = out + i * q;
            if (coeff == 1) {
                row_xor(orow, brow, q);
                continue;
            }
            const uint8_t *trow = table + (long)coeff * 256;
#if defined(__x86_64__) && defined(__GNUC__)
            if (fast) {
                row_mul_xor_ssse3(orow, brow, trow, q);
                continue;
            }
#endif
            row_mul_xor_scalar(orow, brow, trow, q);
        }
    }
}

void gf_mul_vec(const unsigned char *table, const unsigned char *a,
                const unsigned char *b, unsigned char *out, long n)
{
    for (long i = 0; i < n; i++)
        out[i] = table[(long)a[i] * 256 + b[i]];
}
"""

_lock = threading.Lock()
_loaded: Optional[Tuple[object, object]] = None
_error: Optional[str] = None


def _source_digest() -> str:
    return hashlib.sha256((CDEF + C_SOURCE).encode()).hexdigest()[:16]


def _cache_dir() -> str:
    override = os.environ.get("REPRO_GF_NATIVE_CACHE")
    if override:
        return override
    tag = f"py{sys.version_info.major}{sys.version_info.minor}"
    return os.path.join(
        tempfile.gettempdir(), f"repro-gf-native-{_source_digest()}-{tag}"
    )


def _find_extension(directory: str) -> Optional[str]:
    if not os.path.isdir(directory):
        return None
    for name in sorted(os.listdir(directory)):
        if name.startswith(MODULE_NAME) and name.endswith((".so", ".pyd")):
            return os.path.join(directory, name)
    return None


def _load_extension(path: str) -> Tuple[object, object]:
    spec = importlib.util.spec_from_file_location(MODULE_NAME, path)
    if spec is None or spec.loader is None:  # pragma: no cover - loader quirk
        raise RuntimeError(f"cannot load compiled module at {path}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.ffi, module.lib


def _build() -> Tuple[object, object]:
    try:
        from cffi import FFI
    except ImportError as exc:
        raise RuntimeError(f"cffi is not installed: {exc}") from exc

    cache_dir = _cache_dir()
    cached = _find_extension(cache_dir)
    if cached is not None:
        return _load_extension(cached)

    builder = FFI()
    builder.cdef(CDEF)
    builder.set_source(MODULE_NAME, C_SOURCE, extra_compile_args=["-O3"])
    build_dir = tempfile.mkdtemp(prefix="repro-gf-build-")
    try:
        built = builder.compile(tmpdir=build_dir)
    except Exception as exc:
        shutil.rmtree(build_dir, ignore_errors=True)
        raise RuntimeError(f"C toolchain unavailable or build failed: {exc}") from exc
    try:
        # Publish atomically; a concurrent builder winning the rename is fine,
        # we just load whichever copy landed.
        os.replace(build_dir, cache_dir)
    except OSError:
        shutil.rmtree(build_dir, ignore_errors=True)
    published = _find_extension(cache_dir)
    return _load_extension(published if published is not None else built)


def load() -> Tuple[object, object]:
    """Return the compiled ``(ffi, lib)`` pair, building it on first use.

    Raises ``RuntimeError`` (with the underlying reason) when the native
    backend cannot be provided on this host.
    """
    global _loaded, _error
    with _lock:
        if _loaded is not None:
            return _loaded
        if _error is not None:
            raise RuntimeError(_error)
        try:
            _loaded = _build()
        except RuntimeError as exc:
            _error = str(exc)
            raise
        return _loaded


def availability_error() -> Optional[str]:
    """``None`` when the native backend loads, else the human-readable reason."""
    try:
        load()
    except RuntimeError as exc:
        return str(exc)
    return None


def is_available() -> bool:
    """True when the compiled backend can be built (or is already cached)."""
    return availability_error() is None
