"""The MDS code interface shared by every protocol in this reproduction.

An ``[n, k]`` MDS code splits a value of (normalized) size 1 into ``k``
elements and produces ``n`` coded elements of size ``1/k`` each, such that
any ``k`` of them suffice to reconstruct the value (Section II-g of the
paper).  The SODAerr variant additionally requires decoding from ``k + 2e``
elements of which up to ``e`` are silently corrupted (Section VI).

Values are arbitrary byte strings.  Concrete codes share a common framing:
the value is prefixed with a 4-byte big-endian length header and
zero-padded so it splits evenly into ``k`` rows; each coded element is one
row of the encoded matrix.  The header lets ``decode`` recover the exact
original bytes regardless of padding.
"""

from __future__ import annotations

import struct
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence

import numpy as np

_LENGTH_HEADER = struct.Struct(">I")


class DecodingError(ValueError):
    """Raised when a value cannot be reconstructed from the given elements."""


@dataclass(frozen=True, slots=True)
class CodedElement:
    """A single coded element: the ``index``-th symbol of the codeword.

    ``index`` identifies which server the element is destined for / came
    from (0-based), which the decoder needs to know (the paper assumes the
    decoder is "aware of the index set I", Section II-g).
    """

    index: int
    data: bytes

    def __len__(self) -> int:
        return len(self.data)


class MDSCode(ABC):
    """Abstract ``[n, k]`` MDS code over byte-string values."""

    def __init__(self, n: int, k: int) -> None:
        if not (1 <= k <= n):
            raise ValueError(f"require 1 <= k <= n, got n={n}, k={k}")
        self._n = n
        self._k = k

    # ------------------------------------------------------------------
    # parameters
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Code length: number of coded elements / servers."""
        return self._n

    @property
    def k(self) -> int:
        """Code dimension: number of elements needed to reconstruct."""
        return self._k

    @property
    def storage_overhead(self) -> float:
        """Total storage cost in value units when each server stores one element."""
        return self._n / self._k

    @property
    def element_data_units(self) -> float:
        """Normalized size of one coded element (the paper's ``1/k`` units)."""
        return 1.0 / self._k

    def max_erasures(self) -> int:
        """Erasure-only fault tolerance ``n - k``."""
        return self._n - self._k

    # ------------------------------------------------------------------
    # framing helpers shared by the concrete codes
    # ------------------------------------------------------------------
    def _frame(self, value: bytes) -> np.ndarray:
        """Prefix with a length header, pad, and reshape to ``(k, stripe)``."""
        framed = _LENGTH_HEADER.pack(len(value)) + value
        stripe = -(-len(framed) // self._k)  # ceil division
        stripe = max(stripe, 1)
        padded = framed + b"\x00" * (self._k * stripe - len(framed))
        return np.frombuffer(padded, dtype=np.uint8).reshape(self._k, stripe)

    @staticmethod
    def _unframe(rows: np.ndarray) -> bytes:
        """Inverse of :meth:`_frame`: strip padding using the length header."""
        flat = rows.astype(np.uint8, copy=False).tobytes()
        if len(flat) < _LENGTH_HEADER.size:
            raise DecodingError("decoded data shorter than the length header")
        (length,) = _LENGTH_HEADER.unpack_from(flat)
        payload = flat[_LENGTH_HEADER.size : _LENGTH_HEADER.size + length]
        if len(payload) != length:
            raise DecodingError(
                f"decoded data truncated: header says {length} bytes, got {len(payload)}"
            )
        return payload

    @staticmethod
    def _collect(elements: Iterable[CodedElement]) -> Dict[int, bytes]:
        """Normalise an element collection to an index -> data mapping.

        Duplicate indices must agree; conflicting duplicates raise
        :class:`DecodingError` (they indicate a protocol bug upstream).
        """
        out: Dict[int, bytes] = {}
        for el in elements:
            if el.index in out and out[el.index] != el.data:
                raise DecodingError(
                    f"conflicting data supplied for coded element {el.index}"
                )
            out[el.index] = el.data
        return out

    # ------------------------------------------------------------------
    # abstract API
    # ------------------------------------------------------------------
    @abstractmethod
    def encode(self, value: bytes) -> List[CodedElement]:
        """Encode ``value`` into ``n`` coded elements (Phi in the paper)."""

    @abstractmethod
    def decode(self, elements: Iterable[CodedElement]) -> bytes:
        """Reconstruct the value from at least ``k`` correct elements (Phi^-1)."""

    @abstractmethod
    def decode_with_errors(
        self, elements: Iterable[CodedElement], max_errors: int
    ) -> bytes:
        """Reconstruct from ``>= k + 2*max_errors`` elements, up to
        ``max_errors`` of which may be silently corrupted (Phi^-1_err)."""

    # ------------------------------------------------------------------
    # batched pipeline
    # ------------------------------------------------------------------
    def encode_many(self, values: Sequence[bytes]) -> List[List[CodedElement]]:
        """Encode a batch of values; element ``[i][j]`` is value ``i``'s
        ``j``-th coded element.

        The default implementation simply loops; matrix-backed codes
        override it to frame the whole batch into one wide stripe matrix so
        a single GF(2^8) matmul amortises over the batch.  Implementations
        must produce results byte-identical to per-value :meth:`encode`.
        """
        return [self.encode(value) for value in values]

    def decode_many(
        self, element_sets: Sequence[Iterable[CodedElement]]
    ) -> List[bytes]:
        """Decode a batch of element collections, one value per collection.

        Same contract as :meth:`encode_many`: overrides may batch the work
        but must match per-collection :meth:`decode` byte for byte.
        """
        return [self.decode(elements) for elements in element_sets]

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def encode_map(self, value: bytes) -> Dict[int, CodedElement]:
        """Encode and return a ``server index -> element`` mapping."""
        return {el.index: el for el in self.encode(value)}

    def project(self, value: bytes, index: int) -> CodedElement:
        """The single coded element destined for ``index`` (Phi_i in the paper)."""
        if not 0 <= index < self._n:
            raise ValueError(f"element index {index} out of range [0, {self._n})")
        return self.encode(value)[index]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(n={self._n}, k={self._k})"


def as_elements(mapping: Mapping[int, bytes]) -> List[CodedElement]:
    """Convert an ``index -> data`` mapping into a list of coded elements."""
    return [CodedElement(index=i, data=d) for i, d in mapping.items()]


def corrupt(element: CodedElement, xor_mask: int = 0xA5) -> CodedElement:
    """Return a corrupted copy of an element (used by tests and the
    SODAerr disk-error injector).  The corruption is guaranteed to change
    the data (an all-zero mask is rejected)."""
    if xor_mask == 0:
        raise ValueError("xor_mask must be non-zero to actually corrupt data")
    data = bytes(b ^ xor_mask for b in element.data)
    if not data:
        data = bytes([xor_mask & 0xFF])
    return CodedElement(index=element.index, data=data)


def elements_subset(
    elements: Sequence[CodedElement], indices: Iterable[int]
) -> List[CodedElement]:
    """Select the elements whose index is in ``indices`` (order preserved)."""
    wanted = set(indices)
    return [el for el in elements if el.index in wanted]
