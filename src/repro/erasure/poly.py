"""Polynomial arithmetic over GF(2^8).

Polynomials are represented as Python lists of integer coefficients in
*descending* order of degree (``[a_n, ..., a_1, a_0]``), matching the
conventional presentation of Reed–Solomon generator polynomials.  The empty
polynomial and ``[0]`` both denote the zero polynomial.

These routines back the Reed–Solomon encoder (polynomial long division for
systematic encoding) and decoder (syndromes, Berlekamp–Massey, Chien search,
Forney's formula).  They favour clarity over raw speed: the polynomials
involved have degree at most ``n - k`` (a handful of coefficients), so the
per-symbol numpy paths in :mod:`repro.erasure.rs` dominate the runtime.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.erasure.gf import GF256


def normalize(p: Sequence[int]) -> List[int]:
    """Strip leading zero coefficients; the zero polynomial becomes ``[0]``."""
    p = list(p)
    i = 0
    while i < len(p) - 1 and p[i] == 0:
        i += 1
    return p[i:] if p else [0]


def is_zero(p: Sequence[int]) -> bool:
    """True if ``p`` is the zero polynomial."""
    return all(c == 0 for c in p)


def degree(p: Sequence[int]) -> int:
    """Degree of ``p``; the zero polynomial has degree -1."""
    p = normalize(p)
    if is_zero(p):
        return -1
    return len(p) - 1


def add(p: Sequence[int], q: Sequence[int]) -> List[int]:
    """Sum of two polynomials (coefficient-wise XOR)."""
    p, q = list(p), list(q)
    if len(p) < len(q):
        p, q = q, p
    out = list(p)
    offset = len(p) - len(q)
    for i, c in enumerate(q):
        out[offset + i] ^= c
    return normalize(out)


def scale(field: GF256, p: Sequence[int], scalar: int) -> List[int]:
    """Multiply every coefficient of ``p`` by ``scalar``."""
    return normalize([field.mul(c, scalar) for c in p])


def mul(field: GF256, p: Sequence[int], q: Sequence[int]) -> List[int]:
    """Product of two polynomials."""
    p, q = normalize(p), normalize(q)
    if is_zero(p) or is_zero(q):
        return [0]
    out = [0] * (len(p) + len(q) - 1)
    for i, a in enumerate(p):
        if a == 0:
            continue
        for j, b in enumerate(q):
            if b == 0:
                continue
            out[i + j] ^= field.mul(a, b)
    return normalize(out)


def divmod_poly(
    field: GF256, dividend: Sequence[int], divisor: Sequence[int]
) -> tuple[List[int], List[int]]:
    """Polynomial long division: returns ``(quotient, remainder)``."""
    dividend = normalize(dividend)
    divisor = normalize(divisor)
    if is_zero(divisor):
        raise ZeroDivisionError("polynomial division by zero")
    if degree(dividend) < degree(divisor):
        return [0], list(dividend)
    out = list(dividend)
    divisor_lead_inv = field.inv(divisor[0])
    deg_div = len(divisor) - 1
    quotient_len = len(dividend) - deg_div
    for i in range(quotient_len):
        coef = out[i]
        if coef == 0:
            continue
        factor = field.mul(coef, divisor_lead_inv)
        out[i] = factor
        for j in range(1, len(divisor)):
            out[i + j] ^= field.mul(divisor[j], factor)
    quotient = out[:quotient_len]
    remainder = out[quotient_len:]
    return normalize(quotient), normalize(remainder)


def mod(field: GF256, dividend: Sequence[int], divisor: Sequence[int]) -> List[int]:
    """Remainder of polynomial long division."""
    return divmod_poly(field, dividend, divisor)[1]


def evaluate(field: GF256, p: Sequence[int], x: int) -> int:
    """Evaluate ``p`` at ``x`` using Horner's rule."""
    acc = 0
    for c in p:
        acc = field.mul(acc, x) ^ c
    return acc


def derivative(p: Sequence[int]) -> List[int]:
    """Formal derivative over a characteristic-2 field.

    In GF(2^m) the derivative of ``x^i`` is ``i * x^(i-1)`` where ``i`` is
    reduced mod 2, so even-power terms vanish and odd-power terms keep their
    coefficient.
    """
    p = normalize(p)
    n = len(p)
    out: List[int] = []
    for idx, c in enumerate(p[:-1]):
        power = n - 1 - idx
        out.append(c if power % 2 == 1 else 0)
    return normalize(out) if out else [0]


def monomial(degree_: int, coefficient: int = 1) -> List[int]:
    """The polynomial ``coefficient * x^degree``."""
    if degree_ < 0:
        raise ValueError("degree must be non-negative")
    return normalize([coefficient] + [0] * degree_)


def from_roots(field: GF256, roots: Sequence[int]) -> List[int]:
    """The monic polynomial with the given roots: prod (x - r)."""
    p: List[int] = [1]
    for r in roots:
        p = mul(field, p, [1, r])  # (x - r) == (x + r) in characteristic 2
    return p
