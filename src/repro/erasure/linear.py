"""Shared machinery for matrix-defined (linear) MDS codes.

Both erasure backends — the classical Reed–Solomon code and the systematic
Vandermonde code — encode by one matrix product ``G @ message`` and decode
erasures by inverting the ``k x k`` submatrix of ``G`` selected by the
available element indices.  :class:`LinearCode` hosts that shared pipeline:

* single-value ``encode`` / ``decode``;
* batched ``encode_many`` / ``decode_many`` that frame a whole batch of
  values into one wide stripe matrix so a single GF(2^8) matmul amortises
  the per-call overhead over the batch (the sweep workloads' hot path);
* a bounded LRU cache of inverted decode submatrices — there are C(n, k)
  distinct index sets, which grows combinatorially for large ``n``, so an
  unbounded cache is a memory leak in long crash-heavy runs.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.erasure.gf import GF256
from repro.erasure.matrix import gauss_jordan_invert
from repro.erasure.mds import CodedElement, DecodingError, MDSCode

#: Default bound on cached inverted decode submatrices per code instance.
DEFAULT_DECODE_CACHE_SIZE = 128


class LinearCode(MDSCode):
    """An ``[n, k]`` MDS code defined by an ``n x k`` encode matrix.

    Subclasses construct their encode matrix and then call
    :meth:`_init_linear`; everything else (encoding, erasure decoding, the
    batched variants and the decode-matrix cache) is shared.
    """

    def _init_linear(
        self,
        field: GF256,
        encode_matrix: np.ndarray,
        *,
        decode_cache_size: int = DEFAULT_DECODE_CACHE_SIZE,
    ) -> None:
        if decode_cache_size < 1:
            raise ValueError("decode_cache_size must be at least 1")
        self.field = field
        self._encode_matrix = np.asarray(encode_matrix, dtype=np.uint8)
        if self._encode_matrix.shape != (self.n, self.k):
            raise ValueError(
                f"encode matrix must have shape ({self.n}, {self.k}), "
                f"got {self._encode_matrix.shape}"
            )
        self._decode_cache_size = decode_cache_size
        self._decode_cache: "OrderedDict[Tuple[int, ...], np.ndarray]" = OrderedDict()
        # Reused (stacked, codewords) scratch pair for the same-stripe
        # encode_many fast path.  Drains tend to repeat the same batch
        # geometry, so steady-state stripe encodes run entirely in warm
        # pages instead of allocating multiple megabytes per flush.  The
        # buffers never escape: results leave as bytes copies.
        self._stripe_scratch: Tuple[np.ndarray, np.ndarray] | None = None

    # ------------------------------------------------------------------
    # encoding
    # ------------------------------------------------------------------
    def encode(self, value: bytes) -> List[CodedElement]:
        """Encode ``value`` into ``n`` coded elements of equal size."""
        message = self._frame(value)  # (k, stripe)
        codeword = self.field.matmul(self._encode_matrix, message)  # (n, stripe)
        return [
            CodedElement(index=i, data=codeword[i].tobytes()) for i in range(self.n)
        ]

    def encode_many(self, values: Sequence[bytes]) -> List[List[CodedElement]]:
        """Encode a batch of values with one wide matrix product.

        Every value is framed to its own ``(k, stripe_i)`` matrix.  When all
        frames share one stripe length — concurrent writers in a namespace
        encode same-sized values, which is the hot case — they are stacked
        into a ``(batch, k, stripe)`` block and encoded by one fused
        :meth:`GF256.matmul_many` pass.  Mixed-size batches fall back to
        column-wise concatenation through a single plain matmul.  Either
        way the output is byte-identical to calling :meth:`encode` per
        value (``matmul_many`` lays the batch out as the same wide
        column-concatenated matrix).
        """
        if not values:
            return []
        frames = [self._frame(v) for v in values]
        stripe = frames[0].shape[1]
        if all(frame.shape[1] == stripe for frame in frames):
            shape = (len(frames), self.k, stripe)
            if self._stripe_scratch is None or self._stripe_scratch[0].shape != shape:
                self._stripe_scratch = (
                    np.empty(shape, dtype=np.uint8),
                    np.empty((len(frames), self.n, stripe), dtype=np.uint8),
                )
            stacked, out = self._stripe_scratch
            for b, frame in enumerate(frames):
                stacked[b] = frame
            codewords = self.field.matmul_many(
                self._encode_matrix, stacked, out=out
            )
            return [
                [
                    CodedElement(index=i, data=codeword[i].tobytes())
                    for i in range(self.n)
                ]
                for codeword in codewords
            ]
        stacked = np.concatenate(frames, axis=1)  # (k, sum of stripes)
        codeword = self.field.matmul(self._encode_matrix, stacked)
        out: List[List[CodedElement]] = []
        column = 0
        for frame in frames:
            width = frame.shape[1]
            block = codeword[:, column : column + width]
            out.append(
                [CodedElement(index=i, data=block[i].tobytes()) for i in range(self.n)]
            )
            column += width
        return out

    # ------------------------------------------------------------------
    # erasure-only decoding
    # ------------------------------------------------------------------
    def decode(self, elements: Iterable[CodedElement]) -> bytes:
        """Reconstruct the value from any ``k`` (or more) correct elements."""
        available = self._collect(elements)
        indices, stripe = self._decoding_plan(available)
        received = self._gather_rows(available, indices, stripe)
        inverse = self._decode_matrix(indices)
        message = self.field.matmul(inverse, received)
        return self._unframe(message)

    def decode_many(
        self, element_sets: Sequence[Iterable[CodedElement]]
    ) -> List[bytes]:
        """Decode a batch of element collections, batching the matmuls.

        Collections that share the same index set and stripe length (the
        common case in scenario sweeps, where all reads of a run see the
        same surviving servers) are concatenated column-wise and decoded by
        a single matrix product.  Results come back in input order and are
        byte-identical to calling :meth:`decode` per collection.
        """
        collected = [self._collect(els) for els in element_sets]
        groups: Dict[Tuple[Tuple[int, ...], int], List[int]] = {}
        plans: List[Tuple[Tuple[int, ...], int]] = []
        for position, available in enumerate(collected):
            plan = self._decoding_plan(available)
            plans.append(plan)
            groups.setdefault(plan, []).append(position)
        results: List[bytes] = [b""] * len(collected)
        for (indices, stripe), positions in groups.items():
            stacked = np.stack(
                [
                    self._gather_rows(collected[position], indices, stripe)
                    for position in positions
                ]
            )
            inverse = self._decode_matrix(indices)
            messages = self.field.matmul_many(inverse, stacked)
            for slot, position in enumerate(positions):
                results[position] = self._unframe(messages[slot])
        return results

    # ------------------------------------------------------------------
    # shared decode helpers
    # ------------------------------------------------------------------
    def _decoding_plan(
        self, available: Dict[int, bytes]
    ) -> Tuple[Tuple[int, ...], int]:
        """Validate an element mapping and pick ``(indices, stripe)`` for it."""
        if len(available) < self.k:
            raise DecodingError(
                f"need at least k={self.k} coded elements, got {len(available)}"
            )
        self._check_indices(available)
        indices = tuple(sorted(available))[: self.k]
        return indices, self._stripe_length(available)

    def _gather_rows(
        self, available: Dict[int, bytes], indices: Tuple[int, ...], stripe: int
    ) -> np.ndarray:
        rows = np.zeros((len(indices), stripe), dtype=np.uint8)
        for row, idx in enumerate(indices):
            rows[row] = np.frombuffer(available[idx], dtype=np.uint8)
        return rows

    def _decode_matrix(self, indices: Tuple[int, ...]) -> np.ndarray:
        """Inverse of the ``k x k`` encode submatrix for ``indices`` (LRU-cached)."""
        cache = self._decode_cache
        cached = cache.get(indices)
        if cached is not None:
            cache.move_to_end(indices)
            return cached
        sub = self._encode_matrix[list(indices), :]
        inverse = gauss_jordan_invert(self.field, sub)
        cache[indices] = inverse
        if len(cache) > self._decode_cache_size:
            cache.popitem(last=False)
        return inverse

    def _check_indices(self, available: Dict[int, bytes]) -> None:
        sizes = {len(d) for d in available.values()}
        if len(sizes) > 1:
            raise DecodingError(f"coded elements have inconsistent sizes: {sizes}")
        bad = [i for i in available if not 0 <= i < self.n]
        if bad:
            raise DecodingError(f"element indices out of range [0, {self.n}): {bad}")

    @staticmethod
    def _stripe_length(available: Dict[int, bytes]) -> int:
        return len(next(iter(available.values())))

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def encode_matrix(self) -> np.ndarray:
        """The ``n x k`` encode matrix (row ``i`` yields codeword symbol ``i``)."""
        return self._encode_matrix.copy()

    @property
    def decode_cache_size(self) -> int:
        """Number of currently cached inverted decode submatrices."""
        return len(self._decode_cache)
