"""The ABD algorithm (Attiya, Bar-Noy, Dolev) in its MWMR form.

ABD is the classical replication-based emulation of an atomic register:
every server stores a full copy of the value together with a tag, and every
operation touches a majority quorum.

* **Write**: (1) query all servers for their tags, wait for a majority,
  pick the maximum and form the new tag ``(z_max + 1, w)``; (2) send the
  ``(tag, value)`` pair to all servers, wait for a majority of
  acknowledgements.
* **Read**: (1) query all servers for their ``(tag, value)`` pairs, wait
  for a majority and select the pair with the maximum tag; (2) *write back*
  that pair to all servers and wait for a majority of acknowledgements
  before returning the value (the write-back is what makes concurrent reads
  atomic rather than merely regular).

Costs (normalized to the value size): the write sends the full value to all
``n`` servers (cost ``n``); the read receives up to ``n`` full values in its
first phase and writes the chosen value back to all ``n`` servers; each
server permanently stores one full value, so the total storage cost is
``n``.  These are the Table I, row 1 figures the paper quotes (the paper
quotes the dominant ``n`` term; the measured read cost also includes the
write-back traffic).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.consistency.history import READ, WRITE, History
from repro.core.tags import TAG_ZERO, Tag, max_tag
from repro.erasure.mds import MDSCode
from repro.erasure.replication import ReplicationCode
from repro.metrics.costs import StorageTracker
from repro.runtime.cluster import RegisterCluster
from repro.sim.process import Process


# ----------------------------------------------------------------------
# messages
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class AbdQueryRequest:
    """Phase-1 query (both reads and writes): ask for the stored tag.

    Reads also need the stored value, so servers reply with both; the value
    payload is what makes the read's first phase cost ``~n`` units."""

    op_id: str
    include_value: bool
    data_units: float = 0.0


@dataclass(frozen=True, slots=True)
class AbdQueryResponse:
    op_id: str
    tag: Tag
    value: Optional[bytes]
    data_units: float = 0.0


@dataclass(frozen=True, slots=True)
class AbdStoreRequest:
    """Phase-2 store (write) or write-back (read): replace older versions."""

    op_id: str
    tag: Tag
    value: bytes
    data_units: float = 1.0


@dataclass(frozen=True, slots=True)
class AbdStoreAck:
    op_id: str
    tag: Tag
    data_units: float = 0.0


# ----------------------------------------------------------------------
# server
# ----------------------------------------------------------------------
class AbdServer(Process):
    """An ABD replica: stores one full ``(tag, value)`` pair."""

    def __init__(
        self,
        pid: str,
        *,
        initial_value: bytes = b"",
        initial_tag: Tag = TAG_ZERO,
        storage_tracker: Optional[StorageTracker] = None,
    ) -> None:
        super().__init__(pid)
        self.tag = initial_tag
        self.value = initial_value
        self.storage_tracker = storage_tracker

    def attach(self, simulation) -> None:
        super().attach(simulation)
        if self.storage_tracker is not None:
            self.storage_tracker.update(self.pid, 1.0, time=0.0)

    def on_message(self, sender: str, message: object) -> None:
        if isinstance(message, AbdQueryRequest):
            value = self.value if message.include_value else None
            self.send(
                sender,
                AbdQueryResponse(
                    op_id=message.op_id,
                    tag=self.tag,
                    value=value,
                    data_units=1.0 if message.include_value else 0.0,
                ),
            )
        elif isinstance(message, AbdStoreRequest):
            if message.tag > self.tag:
                self.tag = message.tag
                self.value = message.value
                if self.storage_tracker is not None:
                    self.storage_tracker.update(self.pid, 1.0, time=self.now)
            self.send(sender, AbdStoreAck(op_id=message.op_id, tag=message.tag))


# ----------------------------------------------------------------------
# clients
# ----------------------------------------------------------------------
@dataclass(slots=True)
class _AbdWrite:
    op_id: str
    value: bytes
    phase: str = "query"
    responses: Dict[str, Tag] = field(default_factory=dict)
    tag: Optional[Tag] = None
    acks: set = field(default_factory=set)
    callback: Optional[Callable] = None


class AbdWriter(Process):
    """An ABD write client."""

    def __init__(
        self, pid: str, servers: Sequence[str], history: Optional[History] = None
    ) -> None:
        super().__init__(pid)
        self.servers = list(servers)
        self.majority = len(self.servers) // 2 + 1
        self.history = history
        self._current: Optional[_AbdWrite] = None
        self._op_counter = 0
        self.completed_writes: List[str] = []

    @property
    def busy(self) -> bool:
        return self._current is not None

    def start_write(self, value: bytes, callback: Optional[Callable] = None) -> str:
        if self._current is not None:
            raise RuntimeError(f"writer {self.pid} already has a write in flight")
        if self.is_crashed:
            raise RuntimeError(f"writer {self.pid} has crashed")
        self._op_counter += 1
        op_id = f"write:{self.pid}:{self._op_counter}"
        self._current = _AbdWrite(op_id=op_id, value=value, callback=callback)
        if self.history is not None:
            self.history.invoke(op_id, WRITE, str(self.pid), self.now, value=value)
        for s in self.servers:
            self.send(s, AbdQueryRequest(op_id=op_id, include_value=False))
        return op_id

    def is_complete(self, op_id: str) -> bool:
        return op_id in self.completed_writes

    def on_message(self, sender: str, message: object) -> None:
        op = self._current
        if op is None:
            return
        if isinstance(message, AbdQueryResponse) and message.op_id == op.op_id:
            if op.phase != "query":
                return
            op.responses[sender] = message.tag
            if len(op.responses) < self.majority:
                return
            op.tag = max_tag(op.responses.values()).next_for(str(self.pid))
            op.phase = "store"
            for s in self.servers:
                self.send(s, AbdStoreRequest(op_id=op.op_id, tag=op.tag, value=op.value))
        elif isinstance(message, AbdStoreAck) and message.op_id == op.op_id:
            if op.phase != "store" or message.tag != op.tag:
                return
            op.acks.add(sender)
            if len(op.acks) < self.majority:
                return
            op.phase = "done"
            self.completed_writes.append(op.op_id)
            self._current = None
            if self.history is not None:
                self.history.respond(op.op_id, self.now, tag=op.tag)
            if op.callback is not None:
                op.callback(op.tag)

    def on_crash(self) -> None:
        if self._current is not None and self.history is not None:
            self.history.mark_failed(self._current.op_id)


@dataclass(slots=True)
class _AbdRead:
    op_id: str
    phase: str = "query"
    responses: Dict[str, tuple] = field(default_factory=dict)
    tag: Optional[Tag] = None
    value: Optional[bytes] = None
    acks: set = field(default_factory=set)
    callback: Optional[Callable] = None


class AbdReader(Process):
    """An ABD read client (query + write-back)."""

    def __init__(
        self, pid: str, servers: Sequence[str], history: Optional[History] = None
    ) -> None:
        super().__init__(pid)
        self.servers = list(servers)
        self.majority = len(self.servers) // 2 + 1
        self.history = history
        self._current: Optional[_AbdRead] = None
        self._op_counter = 0
        self.completed_reads: List[str] = []

    @property
    def busy(self) -> bool:
        return self._current is not None

    def start_read(self, callback: Optional[Callable] = None) -> str:
        if self._current is not None:
            raise RuntimeError(f"reader {self.pid} already has a read in flight")
        if self.is_crashed:
            raise RuntimeError(f"reader {self.pid} has crashed")
        self._op_counter += 1
        op_id = f"read:{self.pid}:{self._op_counter}"
        self._current = _AbdRead(op_id=op_id, callback=callback)
        if self.history is not None:
            self.history.invoke(op_id, READ, str(self.pid), self.now)
        for s in self.servers:
            self.send(s, AbdQueryRequest(op_id=op_id, include_value=True))
        return op_id

    def is_complete(self, op_id: str) -> bool:
        return op_id in self.completed_reads

    def on_message(self, sender: str, message: object) -> None:
        op = self._current
        if op is None:
            return
        if isinstance(message, AbdQueryResponse) and message.op_id == op.op_id:
            if op.phase != "query":
                return
            op.responses[sender] = (message.tag, message.value)
            if len(op.responses) < self.majority:
                return
            best_tag = max_tag(t for t, _ in op.responses.values())
            best_value = next(v for t, v in op.responses.values() if t == best_tag)
            op.tag, op.value = best_tag, best_value
            op.phase = "writeback"
            for s in self.servers:
                self.send(
                    s, AbdStoreRequest(op_id=op.op_id, tag=best_tag, value=best_value)
                )
        elif isinstance(message, AbdStoreAck) and message.op_id == op.op_id:
            if op.phase != "writeback" or message.tag != op.tag:
                return
            op.acks.add(sender)
            if len(op.acks) < self.majority:
                return
            op.phase = "done"
            self.completed_reads.append(op.op_id)
            self._current = None
            if self.history is not None:
                self.history.respond(op.op_id, self.now, value=op.value, tag=op.tag)
            if op.callback is not None:
                op.callback(op.value, op.tag)

    def on_crash(self) -> None:
        if self._current is not None and self.history is not None:
            self.history.mark_failed(self._current.op_id)


# ----------------------------------------------------------------------
# cluster façade
# ----------------------------------------------------------------------
class AbdCluster(RegisterCluster):
    """An ``n``-replica ABD deployment tolerating ``f <= (n-1)/2`` crashes."""

    protocol_name = "ABD"
    # ABD writers ship the full value; nothing reads the shared encoder
    # cache, so pre-encoding workload batches would be pure waste.
    warm_encoding_effective = False

    def _build_code(self) -> MDSCode:
        # Replication is the degenerate [n, 1] code; it is used only for the
        # uniform cost accounting (each replica holds one "coded element" of
        # size 1).
        return ReplicationCode(self.n)

    def _build_decoder(self):
        # ABD reads return full replicated values; nothing ever decodes.
        return None

    def _make_server(self, index: int, pid: str) -> AbdServer:
        return AbdServer(
            pid,
            initial_value=self.initial_value,
            storage_tracker=self.storage,
        )

    def _make_writer(self, pid: str) -> AbdWriter:
        return AbdWriter(pid, self.server_ids, history=self.history)

    def _make_reader(self, pid: str) -> AbdReader:
        return AbdReader(pid, self.server_ids, history=self.history)

    # ------------------------------------------------------------------
    # paper-facing theoretical quantities (Table I, row 1)
    # ------------------------------------------------------------------
    def theoretical_storage_cost(self) -> float:
        return float(self.n)

    def theoretical_write_cost_bound(self) -> float:
        return float(self.n)

    def theoretical_read_cost(self, delta_w: int = 0) -> float:
        return float(self.n)
