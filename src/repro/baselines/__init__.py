"""Baseline atomic-register protocols the paper compares SODA against.

* :mod:`repro.baselines.abd` — the replication-based ABD algorithm of
  Attiya, Bar-Noy and Dolev [2] in its multi-writer multi-reader form.
  Worst-case write, read and storage costs are all ``n`` (Table I, row 1).
* :mod:`repro.baselines.cas` — the Coded Atomic Storage (CAS) algorithm of
  Cadambe et al. [1]: an ``[n, k]`` MDS code with ``k = n - 2f`` and
  quorums of size ``(n + k) / 2``; communication cost ``n / (n - 2f)`` per
  operation but unbounded storage (every version is kept).
* :mod:`repro.baselines.casgc` — CAS with garbage collection: each server
  keeps coded elements for at most ``delta + 1`` versions, giving the
  ``(n / (n - 2f)) * (delta + 1)`` storage cost of Table I, row 2.
* :mod:`repro.baselines.registry` — a name -> cluster-factory registry used
  by the comparison experiments.
"""

from repro.baselines.abd import AbdCluster
from repro.baselines.cas import CasCluster
from repro.baselines.casgc import CasGcCluster
from repro.baselines.registry import available_protocols, make_cluster

__all__ = [
    "AbdCluster",
    "CasCluster",
    "CasGcCluster",
    "available_protocols",
    "make_cluster",
]
