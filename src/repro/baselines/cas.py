"""The Coded Atomic Storage (CAS) algorithm of Cadambe et al. [1].

CAS is the erasure-coded baseline the paper compares against.  It uses an
``[n, k]`` MDS code with ``k = n - 2f`` and quorums of size
``ceil((n + k) / 2) = n - f``.  Each operation has three phases for writes
and two for reads:

* **Write**: *query* the servers for their highest finalized tag (quorum),
  form the new tag; *pre-write* one coded element to each server (quorum of
  acks); *finalize* the tag (quorum of acks).  Only finalized tags are
  visible to readers, which is what makes concurrent reads safe even though
  different servers may hold elements of different pending writes.
* **Read**: *query* for the highest finalized tag; *finalize* that tag at
  the servers, which reply with their coded element for it if they hold
  one; decode once ``k`` elements arrive (the quorum intersection argument
  guarantees at least ``k`` of the responding servers do hold it).

Communication cost per operation is ``n / k = n / (n - 2f)`` data units.
CAS never removes old coded elements, so its storage cost grows with the
number of writes — that is exactly the weakness CASGC (garbage collection,
see :mod:`repro.baselines.casgc`) and SODA address.

This implementation is reconstructed from the algorithm description in [1]
(no open-source comparator is available offline); it is intentionally kept
close to the above phase structure so the measured costs reflect the
protocol rather than implementation shortcuts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set

from repro.consistency.history import READ, WRITE, History
from repro.core.tags import TAG_ZERO, Tag, max_tag
from repro.erasure.batch import CachedEncoder, ReadDecodeBatcher, WriteEncodeBatcher
from repro.erasure.mds import CodedElement, MDSCode
from repro.erasure.rs import ReedSolomonCode
from repro.metrics.costs import StorageTracker
from repro.runtime.cluster import RegisterCluster
from repro.sim.process import Process


# ----------------------------------------------------------------------
# messages
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class CasQueryRequest:
    """Ask a server for its highest *finalized* tag."""

    op_id: str
    data_units: float = 0.0


@dataclass(frozen=True, slots=True)
class CasQueryResponse:
    op_id: str
    tag: Tag
    data_units: float = 0.0


@dataclass(frozen=True, slots=True)
class CasPreWriteRequest:
    """Store one coded element under ``tag`` with the 'pre' label."""

    op_id: str
    tag: Tag
    element: CodedElement
    data_units: float = 0.0


@dataclass(frozen=True, slots=True)
class CasPreWriteAck:
    op_id: str
    tag: Tag
    data_units: float = 0.0


@dataclass(frozen=True, slots=True)
class CasFinalizeRequest:
    """Mark ``tag`` as finalized.  ``reply_with_element`` is set by readers,
    which need the coded elements back to decode."""

    op_id: str
    tag: Tag
    reply_with_element: bool
    data_units: float = 0.0


@dataclass(frozen=True, slots=True)
class CasFinalizeAck:
    op_id: str
    tag: Tag
    element: Optional[CodedElement]
    server_index: int
    data_units: float = 0.0


# ----------------------------------------------------------------------
# server
# ----------------------------------------------------------------------
@dataclass(slots=True)
class _StoredVersion:
    element: Optional[CodedElement]
    finalized: bool


class CasServer(Process):
    """A CAS / CASGC storage server.

    ``gc_depth`` controls garbage collection: ``None`` keeps every version
    (plain CAS); an integer ``delta`` keeps coded elements only for the
    ``delta + 1`` highest *finalized-or-pending* tags (CASGC).  Metadata
    (tags, labels) is always kept — only coded elements are dropped, which
    is what the storage cost model counts.
    """

    def __init__(
        self,
        pid: str,
        index: int,
        code: MDSCode,
        *,
        initial_element: Optional[CodedElement] = None,
        gc_depth: Optional[int] = None,
        storage_tracker: Optional[StorageTracker] = None,
    ) -> None:
        super().__init__(pid)
        self.index = index
        self.code = code
        self.gc_depth = gc_depth
        self.storage_tracker = storage_tracker
        self.versions: Dict[Tag, _StoredVersion] = {}
        # Incremental views of ``versions`` so the hot paths stay O(1) as
        # the version map grows over a long run: the max finalized tag
        # (every query used to scan all versions) and the set of tags that
        # still hold a coded element (storage accounting used to sum over
        # all versions, GC used to sort them).
        self._max_finalized: Tag = TAG_ZERO
        self._with_elements: Set[Tag] = set()
        if initial_element is not None:
            self.versions[TAG_ZERO] = _StoredVersion(element=initial_element, finalized=True)
            self._with_elements.add(TAG_ZERO)
        self.gc_evictions = 0

    # -- storage accounting ---------------------------------------------
    @property
    def stored_data_units(self) -> float:
        return len(self._with_elements) * self.code.element_data_units

    def _notify_storage(self) -> None:
        if self.storage_tracker is not None:
            self.storage_tracker.update(self.pid, self.stored_data_units, time=self.now)

    def attach(self, simulation) -> None:
        super().attach(simulation)
        self._notify_storage()

    # -- request handling -------------------------------------------------
    def on_message(self, sender: str, message: object) -> None:
        if isinstance(message, CasQueryRequest):
            self.send(
                sender,
                CasQueryResponse(op_id=message.op_id, tag=self._max_finalized),
            )
        elif isinstance(message, CasPreWriteRequest):
            existing = self.versions.get(message.tag)
            if existing is None:
                self.versions[message.tag] = _StoredVersion(
                    element=message.element, finalized=False
                )
                self._with_elements.add(message.tag)
            elif existing.element is None:
                existing.element = message.element
                self._with_elements.add(message.tag)
            self._garbage_collect()
            self._notify_storage()
            self.send(sender, CasPreWriteAck(op_id=message.op_id, tag=message.tag))
        elif isinstance(message, CasFinalizeRequest):
            version = self.versions.get(message.tag)
            if version is None:
                version = _StoredVersion(element=None, finalized=True)
                self.versions[message.tag] = version
            else:
                version.finalized = True
            if message.tag > self._max_finalized:
                self._max_finalized = message.tag
            self._garbage_collect()
            self._notify_storage()
            element = version.element if message.reply_with_element else None
            self.send(
                sender,
                CasFinalizeAck(
                    op_id=message.op_id,
                    tag=message.tag,
                    element=element,
                    server_index=self.index,
                    data_units=(
                        self.code.element_data_units if element is not None else 0.0
                    ),
                ),
            )

    # -- garbage collection (CASGC only) ----------------------------------
    def _garbage_collect(self) -> None:
        if self.gc_depth is None:
            return
        # ``_with_elements`` is bounded by gc_depth + 1 + in-flight writes,
        # so this sort stays O(delta log delta) however long the run is.
        tags_with_elements = sorted(self._with_elements, reverse=True)
        for tag in tags_with_elements[self.gc_depth + 1 :]:
            self.versions[tag].element = None
            self._with_elements.discard(tag)
            self.gc_evictions += 1


# ----------------------------------------------------------------------
# clients
# ----------------------------------------------------------------------
@dataclass(slots=True)
class _CasWrite:
    op_id: str
    value: bytes
    phase: str = "query"
    query_responses: Dict[str, Tag] = field(default_factory=dict)
    tag: Optional[Tag] = None
    prewrite_acks: Set[str] = field(default_factory=set)
    finalize_acks: Set[str] = field(default_factory=set)
    callback: Optional[Callable] = None


class CasWriter(Process):
    """A CAS write client (query / pre-write / finalize)."""

    def __init__(
        self,
        pid: str,
        servers: Sequence[str],
        code: MDSCode,
        quorum_size: int,
        history: Optional[History] = None,
        encoder: Optional[CachedEncoder] = None,
        encode_batcher: Optional[WriteEncodeBatcher] = None,
    ) -> None:
        super().__init__(pid)
        self.servers = list(servers)
        self.code = code
        self.quorum = quorum_size
        self.history = history
        self.encoder = encoder
        self.encode_batcher = encode_batcher
        self._current: Optional[_CasWrite] = None
        self._op_counter = 0
        self.completed_writes: List[str] = []

    @property
    def busy(self) -> bool:
        return self._current is not None

    def start_write(self, value: bytes, callback: Optional[Callable] = None) -> str:
        if self._current is not None:
            raise RuntimeError(f"writer {self.pid} already has a write in flight")
        if self.is_crashed:
            raise RuntimeError(f"writer {self.pid} has crashed")
        self._op_counter += 1
        op_id = f"write:{self.pid}:{self._op_counter}"
        self._current = _CasWrite(op_id=op_id, value=value, callback=callback)
        if self.history is not None:
            self.history.invoke(op_id, WRITE, str(self.pid), self.now, value=value)
        for s in self.servers:
            self.send(s, CasQueryRequest(op_id=op_id))
        return op_id

    def is_complete(self, op_id: str) -> bool:
        return op_id in self.completed_writes

    def on_message(self, sender: str, message: object) -> None:
        op = self._current
        if op is None:
            return
        if isinstance(message, CasQueryResponse) and message.op_id == op.op_id:
            if op.phase != "query":
                return
            op.query_responses[sender] = message.tag
            if len(op.query_responses) < self.quorum:
                return
            op.tag = max_tag(op.query_responses.values()).next_for(str(self.pid))
            op.phase = "prewrite"
            # The encode and the pre-write sends that depend on it are the
            # last actions of this handler, so batching mode may defer them
            # as a unit to the drain flush (same simulated time, same send
            # order) without perturbing the event trace.
            if self.encode_batcher is not None:
                self.encode_batcher.submit(
                    op.value, lambda elements, op=op: self._send_prewrites(op, elements)
                )
            else:
                elements = (
                    self.encoder.encode(op.value)
                    if self.encoder is not None
                    else self.code.encode(op.value)
                )
                self._send_prewrites(op, elements)
        elif isinstance(message, CasPreWriteAck) and message.op_id == op.op_id:
            if op.phase != "prewrite" or message.tag != op.tag:
                return
            op.prewrite_acks.add(sender)
            if len(op.prewrite_acks) < self.quorum:
                return
            op.phase = "finalize"
            for s in self.servers:
                self.send(
                    s,
                    CasFinalizeRequest(
                        op_id=op.op_id, tag=op.tag, reply_with_element=False
                    ),
                )
        elif isinstance(message, CasFinalizeAck) and message.op_id == op.op_id:
            if op.phase != "finalize" or message.tag != op.tag:
                return
            op.finalize_acks.add(sender)
            if len(op.finalize_acks) < self.quorum:
                return
            op.phase = "done"
            self.completed_writes.append(op.op_id)
            self._current = None
            if self.history is not None:
                self.history.respond(op.op_id, self.now, tag=op.tag)
            if op.callback is not None:
                op.callback(op.tag)

    def _send_prewrites(self, op: _CasWrite, elements: Sequence[CodedElement]) -> None:
        for idx, s in enumerate(self.servers):
            self.send(
                s,
                CasPreWriteRequest(
                    op_id=op.op_id,
                    tag=op.tag,
                    element=elements[idx],
                    data_units=self.code.element_data_units,
                ),
            )

    def on_crash(self) -> None:
        if self._current is not None and self.history is not None:
            self.history.mark_failed(self._current.op_id)


@dataclass(slots=True)
class _CasRead:
    op_id: str
    phase: str = "query"  # "query" -> "collect" [-> "decode"] -> "done"
    query_responses: Dict[str, Tag] = field(default_factory=dict)
    tag: Optional[Tag] = None
    elements: Dict[int, CodedElement] = field(default_factory=dict)
    responders: Set[str] = field(default_factory=set)
    value: Optional[bytes] = None
    callback: Optional[Callable] = None


class CasReader(Process):
    """A CAS read client (query / finalize-and-collect)."""

    def __init__(
        self,
        pid: str,
        servers: Sequence[str],
        code: MDSCode,
        quorum_size: int,
        history: Optional[History] = None,
        decode_batcher: Optional[ReadDecodeBatcher] = None,
    ) -> None:
        super().__init__(pid)
        self.servers = list(servers)
        self.code = code
        self.quorum = quorum_size
        self.history = history
        #: Cluster-shared decode batcher; ``None`` decodes eagerly inline.
        self.decode_batcher = decode_batcher
        self._current: Optional[_CasRead] = None
        self._op_counter = 0
        self.completed_reads: List[str] = []

    @property
    def busy(self) -> bool:
        return self._current is not None

    def start_read(self, callback: Optional[Callable] = None) -> str:
        if self._current is not None:
            raise RuntimeError(f"reader {self.pid} already has a read in flight")
        if self.is_crashed:
            raise RuntimeError(f"reader {self.pid} has crashed")
        self._op_counter += 1
        op_id = f"read:{self.pid}:{self._op_counter}"
        self._current = _CasRead(op_id=op_id, callback=callback)
        if self.history is not None:
            self.history.invoke(op_id, READ, str(self.pid), self.now)
        for s in self.servers:
            self.send(s, CasQueryRequest(op_id=op_id))
        return op_id

    def is_complete(self, op_id: str) -> bool:
        return op_id in self.completed_reads

    def on_message(self, sender: str, message: object) -> None:
        op = self._current
        if op is None:
            return
        if isinstance(message, CasQueryResponse) and message.op_id == op.op_id:
            if op.phase != "query":
                return
            op.query_responses[sender] = message.tag
            if len(op.query_responses) < self.quorum:
                return
            op.tag = max_tag(op.query_responses.values())
            op.phase = "collect"
            for s in self.servers:
                self.send(
                    s,
                    CasFinalizeRequest(
                        op_id=op.op_id, tag=op.tag, reply_with_element=True
                    ),
                )
        elif isinstance(message, CasFinalizeAck) and message.op_id == op.op_id:
            if op.phase != "collect" or message.tag != op.tag:
                return
            op.responders.add(sender)
            if message.element is not None:
                op.elements[message.element.index] = message.element
            if len(op.elements) < self.code.k:
                return
            tag = op.tag
            elements = list(op.elements.values())
            batcher = self.decode_batcher
            if batcher is None:
                self._finish_read(op, tag, self.code.decode(elements))
            else:
                # Ready decodes are collected per event-loop drain and
                # flushed through one memoized decode_many call at the
                # same simulated time (see repro.erasure.batch).
                op.phase = "decode"
                batcher.submit(
                    tag, elements, lambda value: self._finish_read(op, tag, value)
                )

    def _finish_read(self, op: _CasRead, tag: Tag, value: bytes) -> None:
        op.value = value
        op.phase = "done"
        self.completed_reads.append(op.op_id)
        self._current = None
        if self.history is not None:
            self.history.respond(op.op_id, self.now, value=value, tag=tag)
        if op.callback is not None:
            op.callback(value, tag)

    def on_crash(self) -> None:
        if self._current is not None and self.history is not None:
            self.history.mark_failed(self._current.op_id)


# ----------------------------------------------------------------------
# cluster façade
# ----------------------------------------------------------------------
class CasCluster(RegisterCluster):
    """An ``n``-server CAS deployment tolerating ``f`` crashes (``k = n - 2f``)."""

    protocol_name = "CAS"

    #: Garbage-collection depth; ``None`` disables GC (plain CAS).
    gc_depth: Optional[int] = None

    def _validate_parameters(self) -> None:
        super()._validate_parameters()
        if self.n - 2 * self.f < 1:
            raise ValueError(
                f"CAS requires k = n - 2f >= 1, got n={self.n}, f={self.f}"
            )

    @property
    def k(self) -> int:
        return self.n - 2 * self.f

    @property
    def quorum_size(self) -> int:
        """``ceil((n + k) / 2)`` — with ``k = n - 2f`` this is ``n - f``."""
        return -(-(self.n + self.k) // 2)

    def _build_code(self) -> MDSCode:
        return ReedSolomonCode(self.n, self.n - 2 * self.f)

    def _make_server(self, index: int, pid: str) -> CasServer:
        return CasServer(
            pid,
            index,
            self.code,
            initial_element=self.initial_elements[index],
            gc_depth=self.gc_depth,
            storage_tracker=self.storage,
        )

    def _make_writer(self, pid: str) -> CasWriter:
        return CasWriter(
            pid,
            self.server_ids,
            self.code,
            self.quorum_size,
            history=self.history,
            encoder=self.encoder,
            encode_batcher=self.encode_batcher,
        )

    def _make_reader(self, pid: str) -> CasReader:
        return CasReader(
            pid,
            self.server_ids,
            self.code,
            self.quorum_size,
            history=self.history,
            decode_batcher=self.decode_batcher,
        )

    # ------------------------------------------------------------------
    # paper-facing theoretical quantities
    # ------------------------------------------------------------------
    def theoretical_write_cost_bound(self) -> float:
        return self.n / (self.n - 2 * self.f)

    def theoretical_read_cost(self, delta_w: int = 0) -> float:
        return self.n / (self.n - 2 * self.f)

    def theoretical_storage_cost(self, versions: Optional[int] = None) -> float:
        """Plain CAS keeps every version: the storage cost after ``versions``
        completed writes is ``(versions + 1) * n / (n - 2f)`` (the ``+ 1``
        accounts for the initial value)."""
        if versions is None:
            versions = len([w for w in self.full_history().writes() if w.is_complete])
        return (versions + 1) * self.n / (self.n - 2 * self.f)
