"""Registry of every atomic-register protocol available in this repository.

The comparison experiments (Table I, the storage/communication trade-off
ablation) iterate over protocols by name; this module centralises the
construction so benchmarks, examples and the CLI all build clusters the
same way.
"""

from __future__ import annotations

from typing import List

from repro.baselines.abd import AbdCluster
from repro.baselines.cas import CasCluster
from repro.baselines.casgc import CasGcCluster
from repro.core.soda.cluster import SodaCluster
from repro.core.sodaerr.cluster import SodaErrCluster
from repro.runtime.cluster import RegisterCluster


def available_protocols() -> List[str]:
    """Names accepted by :func:`make_cluster`."""
    return ["ABD", "CAS", "CASGC", "SODA", "SODAerr"]


def make_cluster(protocol: str, n: int, f: int, **kwargs) -> RegisterCluster:
    """Build a cluster of the named protocol.

    Protocol-specific keyword arguments: ``delta`` for CASGC (concurrency
    bound used by garbage collection), ``e`` and the error-injection
    controls for SODAerr.  All other keyword arguments are passed through to
    the cluster constructor (seed, delay model, client counts, ...).
    """
    name = protocol.strip().upper()
    if name == "ABD":
        return AbdCluster(n, f, **kwargs)
    if name == "CAS":
        return CasCluster(n, f, **kwargs)
    if name == "CASGC":
        return CasGcCluster(n, f, **kwargs)
    if name == "SODA":
        return SodaCluster(n, f, **kwargs)
    if name == "SODAERR":
        return SodaErrCluster(n, f, **kwargs)
    raise ValueError(
        f"unknown protocol {protocol!r}; available: {', '.join(available_protocols())}"
    )
