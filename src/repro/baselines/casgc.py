"""CAS with Garbage Collection (CASGC), the paper's main coded baseline.

CASGC is CAS (see :mod:`repro.baselines.cas`) plus server-side garbage
collection: each server keeps coded elements for at most ``delta + 1``
versions, where ``delta`` is an a-priori bound on the number of writes
concurrent with any read.  This caps the worst-case total storage cost at
``(n / (n - 2f)) * (delta + 1)`` — the Table I, row 2 figure — at the price
of a *rigid* dependence on ``delta``: liveness of reads is only guaranteed
when the concurrency bound holds, and the storage is consumed even when
there is no concurrency at all (the comparison SODA draws in Section I-B).
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.cas import CasCluster


class CasGcCluster(CasCluster):
    """An ``n``-server CASGC deployment with garbage-collection depth ``delta``."""

    protocol_name = "CASGC"

    def __init__(
        self,
        n: int,
        f: int,
        *,
        delta: int = 0,
        **cluster_kwargs,
    ) -> None:
        if delta < 0:
            raise ValueError("delta (the concurrency bound) must be non-negative")
        self.delta = delta
        self.gc_depth = delta
        super().__init__(n, f, **cluster_kwargs)

    # ------------------------------------------------------------------
    # paper-facing theoretical quantities (Table I, row 2)
    # ------------------------------------------------------------------
    def theoretical_storage_cost(self, versions: Optional[int] = None) -> float:
        """Worst-case total storage: ``(n / (n - 2f)) * (delta + 1)``."""
        return self.n / (self.n - 2 * self.f) * (self.delta + 1)
