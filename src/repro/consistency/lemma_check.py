"""Tag-based atomicity check (Lemma 2.1 of the paper).

The paper proves atomicity of SODA by associating a ``(tag, value)`` pair
with every completed operation and exhibiting the partial order

    ``pi < phi``  iff  ``tag(pi) < tag(phi)``, or
                       ``tag(pi) == tag(phi)`` and ``pi`` is a write and
                       ``phi`` is a read,

then showing the three properties of Lemma 2.1 hold.  This module checks
those properties directly on a recorded history (whose operations carry the
tags the protocol assigned), providing a white-box verification that
mirrors the paper's proof technique.  The black-box Wing–Gong–Lowe checker
in :mod:`repro.consistency.wgl` complements it without looking at tags.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.consistency.history import READ, WRITE, History, OperationRecord


@dataclass(frozen=True)
class AtomicityViolation:
    """A single violated property, with a human-readable explanation."""

    property_name: str
    description: str
    op_ids: tuple

    def __str__(self) -> str:  # pragma: no cover - debugging convenience
        return f"[{self.property_name}] {self.description} (ops: {', '.join(self.op_ids)})"


def _precedes_in_partial_order(a: OperationRecord, b: OperationRecord) -> bool:
    """The paper's partial order ``a < b`` derived from tags."""
    if a.tag is None or b.tag is None:
        raise ValueError("operations must carry tags for the Lemma 2.1 check")
    if a.tag < b.tag:
        return True
    if a.tag == b.tag and a.kind == WRITE and b.kind == READ:
        return True
    return False


def check_lemma_properties(
    history: History,
    *,
    initial_tag: Optional[object] = None,
    initial_value: bytes = b"",
) -> List[AtomicityViolation]:
    """Check properties P1, P2, P3 of Lemma 2.1 on a complete history.

    Parameters
    ----------
    history:
        The recorded execution.  Incomplete operations are ignored (the
        lemma quantifies over executions in which all invoked operations
        complete; the black-box checker handles the general case).
    initial_tag / initial_value:
        The tag and value of the distinguished initial object state
        (``t0`` / ``v0`` in the paper).  Reads carrying ``initial_tag``
        must return ``initial_value``.

    Returns
    -------
    list of violations; empty means the execution is atomic per the lemma.
    """
    ops = history.complete_operations()
    missing = [op.op_id for op in ops if op.tag is None]
    if missing:
        raise ValueError(
            f"operations without tags cannot be checked against Lemma 2.1: {missing}"
        )
    violations: List[AtomicityViolation] = []

    # P1: the partial order must be consistent with real-time order.
    for a in ops:
        for b in ops:
            if a.op_id == b.op_id or not a.precedes(b):
                continue
            if _precedes_in_partial_order(b, a):
                violations.append(
                    AtomicityViolation(
                        "P1",
                        f"{b.op_id} is ordered before {a.op_id} by tags although "
                        f"{a.op_id} completed before {b.op_id} was invoked "
                        f"(tags {b.tag} vs {a.tag})",
                        (a.op_id, b.op_id),
                    )
                )

    # P2: writes are totally ordered with respect to every other operation.
    writes = [op for op in ops if op.kind == WRITE]
    seen_tags = {}
    for w in writes:
        if w.tag in seen_tags:
            violations.append(
                AtomicityViolation(
                    "P2",
                    f"writes {seen_tags[w.tag]} and {w.op_id} share tag {w.tag}",
                    (seen_tags[w.tag], w.op_id),
                )
            )
        else:
            seen_tags[w.tag] = w.op_id
    for w in writes:
        for other in ops:
            if other.op_id == w.op_id:
                continue
            if not (
                _precedes_in_partial_order(w, other)
                or _precedes_in_partial_order(other, w)
            ):
                violations.append(
                    AtomicityViolation(
                        "P2",
                        f"write {w.op_id} and {other.kind} {other.op_id} are "
                        f"incomparable (both have tag {w.tag})",
                        (w.op_id, other.op_id),
                    )
                )

    # P3: a read returns the value of the unique write with its tag, or the
    # initial value if its tag is the initial tag.
    write_by_tag = {w.tag: w for w in writes}
    for r in ops:
        if r.kind != READ:
            continue
        if initial_tag is not None and r.tag == initial_tag:
            if r.value != initial_value:
                violations.append(
                    AtomicityViolation(
                        "P3",
                        f"read {r.op_id} carries the initial tag but returned "
                        f"{r.value!r} instead of the initial value",
                        (r.op_id,),
                    )
                )
            continue
        writer = write_by_tag.get(r.tag)
        if writer is None:
            violations.append(
                AtomicityViolation(
                    "P3",
                    f"read {r.op_id} returned tag {r.tag} that no completed "
                    f"write produced",
                    (r.op_id,),
                )
            )
        elif r.value != writer.value:
            violations.append(
                AtomicityViolation(
                    "P3",
                    f"read {r.op_id} returned {r.value!r} but the write with "
                    f"tag {r.tag} ({writer.op_id}) wrote {writer.value!r}",
                    (r.op_id, writer.op_id),
                )
            )

    return violations
