"""Operation histories and atomicity (linearizability) checking.

The paper proves that SODA and SODAerr implement an *atomic* multi-writer
multi-reader register (Theorems 5.2 and 6.2) by exhibiting a partial order
on operations that satisfies the three properties of Lemma 2.1.  This
package provides the machinery to *check* those guarantees on simulated
executions:

* :mod:`repro.consistency.history` records operation invocations/responses
  together with the (tag, value) pair the protocol associates with them;
* :mod:`repro.consistency.lemma_check` verifies the Lemma 2.1 properties
  directly from the recorded tags (the proof technique used in the paper);
* :mod:`repro.consistency.wgl` is an independent Wing–Gong–Lowe style
  linearizability checker for read/write registers that only looks at
  invocation/response times and values — it knows nothing about tags, so it
  cross-validates the protocol and the tag-based argument.
"""

from repro.consistency.history import History, OperationRecord
from repro.consistency.lemma_check import AtomicityViolation, check_lemma_properties
from repro.consistency.wgl import check_linearizability

__all__ = [
    "History",
    "OperationRecord",
    "AtomicityViolation",
    "check_lemma_properties",
    "check_linearizability",
]
