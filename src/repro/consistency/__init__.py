"""Operation histories and atomicity (linearizability) checking.

The paper proves that SODA and SODAerr implement an *atomic* multi-writer
multi-reader register (Theorems 5.2 and 6.2) by exhibiting a partial order
on operations that satisfies the three properties of Lemma 2.1.  This
package provides the machinery to *check* those guarantees on simulated
executions:

* :mod:`repro.consistency.stream` defines the operation event stream: the
  :class:`OperationRecord`, the narrow :class:`HistorySink` recording
  interface every protocol client writes through, and the bounded-memory
  :class:`StreamingRecorder` for long runs;
* :mod:`repro.consistency.history` is the in-memory sink (the full
  :class:`History` log) consumed by the offline checkers and analyses;
* :mod:`repro.consistency.lemma_check` verifies the Lemma 2.1 properties
  directly from the recorded tags (the proof technique used in the paper);
* :mod:`repro.consistency.wgl` is an independent Wing–Gong–Lowe style
  linearizability checker for read/write registers that only looks at
  invocation/response times and values — it knows nothing about tags, so it
  cross-validates the protocol and the tag-based argument;
* :mod:`repro.consistency.incremental` checks the same register property
  *online* as operations retire off the stream, in O(ops · frontier) time
  and bounded memory — the scale-out path for million-operation histories.
"""

from repro.consistency.history import History, OperationRecord
from repro.consistency.incremental import (
    ClusterSummary,
    IncrementalAtomicityChecker,
    IncrementalCheckResult,
    check_history_incrementally,
)
from repro.consistency.lemma_check import AtomicityViolation, check_lemma_properties
from repro.consistency.multiplex import ObjectCheckerMux
from repro.consistency.shardmerge import (
    MergedCheckResult,
    NamespaceCheckResult,
    ShardVerdict,
    check_history_sharded,
    merge_namespace_verdicts,
    merge_shard_verdicts,
    shard_verdict_from_checker,
)
from repro.consistency.stream import HistorySink, StreamingRecorder, StreamObserver
from repro.consistency.wgl import check_linearizability

__all__ = [
    "ClusterSummary",
    "History",
    "HistorySink",
    "IncrementalAtomicityChecker",
    "IncrementalCheckResult",
    "MergedCheckResult",
    "NamespaceCheckResult",
    "ObjectCheckerMux",
    "OperationRecord",
    "ShardVerdict",
    "merge_namespace_verdicts",
    "StreamingRecorder",
    "StreamObserver",
    "AtomicityViolation",
    "check_lemma_properties",
    "check_linearizability",
    "check_history_incrementally",
    "check_history_sharded",
    "merge_shard_verdicts",
    "shard_verdict_from_checker",
]
