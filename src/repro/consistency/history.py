"""Recording of operation histories during simulated executions.

A :class:`History` is the in-memory :class:`~repro.consistency.stream.HistorySink`:
the full sequence of read/write operations a workload performed against a
cluster, with their invocation and response times, the values
written/returned and (when the protocol exposes them) the tags the
operations were associated with.  Histories are consumed by the
linearizability checkers and by the latency/cost analyses.

For executions too long to materialise, use
:class:`~repro.consistency.stream.StreamingRecorder` instead; both sinks
record through the same narrow interface, so protocol clients never need to
know which one is behind them.
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, List, Optional, Tuple

from repro.consistency.stream import (
    READ,
    WRITE,
    HistorySink,
    OperationRecord,
)

__all__ = ["READ", "WRITE", "History", "OperationRecord"]


class History(HistorySink):
    """An append-only log of operations (the keep-everything sink)."""

    def __init__(self) -> None:
        super().__init__()
        self._ops: Dict[str, OperationRecord] = {}
        self._order: List[str] = []
        # Lazily built per-kind interval index for concurrency_degree;
        # invalidated whenever an operation is added or completes.
        self._sweep_cache: Dict[Optional[str], Tuple[List[float], List[float]]] = {}

    # ------------------------------------------------------------------
    # storage hooks
    # ------------------------------------------------------------------
    def _store(self, record: OperationRecord) -> None:
        if record.op_id in self._ops:
            raise ValueError(f"duplicate operation id {record.op_id!r}")
        self._ops[record.op_id] = record
        self._order.append(record.op_id)
        self._sweep_cache.clear()

    def _lookup(self, op_id: str) -> Optional[OperationRecord]:
        return self._ops.get(op_id)

    def _retire(self, record: OperationRecord) -> None:
        self._sweep_cache.clear()

    # ------------------------------------------------------------------
    # recording extras
    # ------------------------------------------------------------------
    def record(self, record: OperationRecord) -> OperationRecord:
        """Append a pre-built record (e.g. replayed off another sink).

        Unlike :meth:`invoke` + :meth:`respond` this does not dispatch
        observer events; it is a bulk-load path for copies and replays.
        """
        if record.kind not in (WRITE, READ):
            raise ValueError(f"unknown operation kind {record.kind!r}")
        self._store(record)
        self.invoked_count += 1
        if record.is_complete:
            self.completed_count += 1
        if record.failed:
            self.failed_count += 1
        return record

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self):
        return iter(self.operations())

    def operations(self) -> List[OperationRecord]:
        """All operations in invocation order."""
        return [self._ops[op_id] for op_id in self._order]

    def complete_operations(self) -> List[OperationRecord]:
        return [op for op in self.operations() if op.is_complete]

    def incomplete_operations(self) -> List[OperationRecord]:
        return [op for op in self.operations() if not op.is_complete]

    def writes(self) -> List[OperationRecord]:
        return [op for op in self.operations() if op.kind == WRITE]

    def reads(self) -> List[OperationRecord]:
        return [op for op in self.operations() if op.kind == READ]

    def _sweep_index(self, kind: Optional[str]) -> Tuple[List[float], List[float]]:
        """Sorted invocation and response times of all ops of ``kind``
        (response ``inf`` for incomplete ops), for interval counting."""
        cached = self._sweep_cache.get(kind)
        if cached is None:
            ops = self.operations() if kind is None else [
                op for op in self.operations() if op.kind == kind
            ]
            invocations = sorted(op.invoked_at for op in ops)
            responses = sorted(
                op.responded_at if op.responded_at is not None else math.inf
                for op in ops
            )
            cached = (invocations, responses)
            self._sweep_cache[kind] = cached
        return cached

    def concurrency_degree(self, op: OperationRecord, kind: Optional[str] = None) -> int:
        """Number of other operations (optionally of a given kind) concurrent
        with ``op`` — used to measure the paper's ``delta_w`` empirically.

        Implemented as an interval sweep over invocation/response times
        sorted once per history (O(log n) per query after an O(n log n)
        index build) instead of the former O(n) scan per query: an
        operation is *not* concurrent with ``op`` exactly when it responded
        strictly before ``op`` was invoked or was invoked strictly after
        ``op`` responded, and those two sets are disjoint.
        """
        invocations, responses = self._sweep_index(kind)
        end = op.responded_at if op.responded_at is not None else math.inf
        total = len(invocations)
        invoked_after = total - bisect.bisect_right(invocations, end)
        responded_before = bisect.bisect_left(responses, op.invoked_at)
        count = total - invoked_after - responded_before
        if kind is None or op.kind == kind:
            count -= 1  # exclude op itself
        return count

    def restricted_to_complete(self) -> "History":
        """A copy containing only the completed operations (the checkers
        operate on complete histories, per Lemma 2.1)."""
        out = History()
        for op in self.complete_operations():
            out.record(
                OperationRecord(
                    op_id=op.op_id,
                    kind=op.kind,
                    client=op.client,
                    invoked_at=op.invoked_at,
                    responded_at=op.responded_at,
                    value=op.value,
                    tag=op.tag,
                    failed=op.failed,
                )
            )
        return out
