"""Recording of operation histories during simulated executions.

A :class:`History` is the sequence of read/write operations a workload
performed against a cluster, with their invocation and response times, the
values written/returned and (when the protocol exposes them) the tags the
operations were associated with.  Histories are consumed by the
linearizability checkers and by the latency/cost analyses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

WRITE = "write"
READ = "read"


@dataclass
class OperationRecord:
    """One client operation in an execution.

    Attributes
    ----------
    op_id:
        Unique identifier, also used to attribute communication cost.
    kind:
        ``"write"`` or ``"read"``.
    client:
        Process id of the invoking client.
    invoked_at / responded_at:
        Simulated times of the invocation and response steps; an operation
        with ``responded_at is None`` is incomplete (its client may have
        crashed, or the execution was truncated).
    value:
        For writes, the value written; for reads, the value returned.
    tag:
        The protocol-level tag associated with the operation (write tag or
        the tag whose elements the read decoded), when available.
    failed:
        True if the client crashed before the operation completed.
    """

    op_id: str
    kind: str
    client: str
    invoked_at: float
    responded_at: Optional[float] = None
    value: Optional[bytes] = None
    tag: Optional[object] = None
    failed: bool = False

    @property
    def is_complete(self) -> bool:
        return self.responded_at is not None

    @property
    def duration(self) -> Optional[float]:
        if self.responded_at is None:
            return None
        return self.responded_at - self.invoked_at

    def precedes(self, other: "OperationRecord") -> bool:
        """Real-time precedence: this op responded before the other was invoked."""
        return self.responded_at is not None and self.responded_at < other.invoked_at

    def concurrent_with(self, other: "OperationRecord") -> bool:
        return not self.precedes(other) and not other.precedes(self)


class History:
    """An append-only log of operations."""

    def __init__(self) -> None:
        self._ops: Dict[str, OperationRecord] = {}
        self._order: List[str] = []

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def invoke(
        self, op_id: str, kind: str, client: str, time: float, value: Optional[bytes] = None
    ) -> OperationRecord:
        if op_id in self._ops:
            raise ValueError(f"duplicate operation id {op_id!r}")
        if kind not in (WRITE, READ):
            raise ValueError(f"unknown operation kind {kind!r}")
        record = OperationRecord(
            op_id=op_id, kind=kind, client=client, invoked_at=time, value=value
        )
        self._ops[op_id] = record
        self._order.append(op_id)
        return record

    def respond(
        self,
        op_id: str,
        time: float,
        *,
        value: Optional[bytes] = None,
        tag: Optional[object] = None,
    ) -> OperationRecord:
        record = self._ops[op_id]
        if record.responded_at is not None:
            raise ValueError(f"operation {op_id!r} already completed")
        if time < record.invoked_at:
            raise ValueError("response cannot precede invocation")
        record.responded_at = time
        if value is not None:
            record.value = value
        if tag is not None:
            record.tag = tag
        return record

    def mark_failed(self, op_id: str) -> None:
        self._ops[op_id].failed = True

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self):
        return iter(self.operations())

    def get(self, op_id: str) -> OperationRecord:
        return self._ops[op_id]

    def operations(self) -> List[OperationRecord]:
        """All operations in invocation order."""
        return [self._ops[op_id] for op_id in self._order]

    def complete_operations(self) -> List[OperationRecord]:
        return [op for op in self.operations() if op.is_complete]

    def incomplete_operations(self) -> List[OperationRecord]:
        return [op for op in self.operations() if not op.is_complete]

    def writes(self) -> List[OperationRecord]:
        return [op for op in self.operations() if op.kind == WRITE]

    def reads(self) -> List[OperationRecord]:
        return [op for op in self.operations() if op.kind == READ]

    def concurrency_degree(self, op: OperationRecord, kind: Optional[str] = None) -> int:
        """Number of other operations (optionally of a given kind) concurrent
        with ``op`` — used to measure the paper's ``delta_w`` empirically."""
        count = 0
        for other in self.operations():
            if other.op_id == op.op_id:
                continue
            if kind is not None and other.kind != kind:
                continue
            if op.concurrent_with(other):
                count += 1
        return count

    def restricted_to_complete(self) -> "History":
        """A copy containing only the completed operations (the checkers
        operate on complete histories, per Lemma 2.1)."""
        out = History()
        for op in self.complete_operations():
            rec = out.invoke(op.op_id, op.kind, op.client, op.invoked_at, value=op.value)
            rec.responded_at = op.responded_at
            rec.tag = op.tag
            rec.failed = op.failed
        return out
