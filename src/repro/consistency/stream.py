"""The operation event stream: records, sinks and the bounded recorder.

Every protocol client records its operations through the narrow
:class:`HistorySink` interface — ``invoke`` / ``respond`` / ``mark_failed``
/ ``get`` — instead of mutating history internals.  Two sinks implement it:

* :class:`~repro.consistency.history.History` — the in-memory append-only
  log used by tests, the WGL checker and the small-scale experiments;
* :class:`StreamingRecorder` — a bounded/windowed recorder for long runs:
  it keeps only the in-flight operations plus a fixed-size window of
  recently retired ones, maintains aggregate counters, and forwards every
  event to subscribed observers (e.g. the incremental atomicity checker in
  :mod:`repro.consistency.incremental`), so a million-operation workload
  can be checked without ever materialising its full history.

Observers implement :class:`StreamObserver`; all callbacks receive the
:class:`OperationRecord` being recorded, *after* the sink has applied the
event to it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional

WRITE = "write"
READ = "read"


@dataclass(slots=True)
class OperationRecord:
    """One client operation in an execution.

    Attributes
    ----------
    op_id:
        Unique identifier, also used to attribute communication cost.
    kind:
        ``"write"`` or ``"read"``.
    client:
        Process id of the invoking client.
    invoked_at / responded_at:
        Simulated times of the invocation and response steps; an operation
        with ``responded_at is None`` is incomplete (its client may have
        crashed, or the execution was truncated).
    value:
        For writes, the value written; for reads, the value returned.
    tag:
        The protocol-level tag associated with the operation (write tag or
        the tag whose elements the read decoded), when available.
    failed:
        True if the client crashed before the operation completed.
    """

    op_id: str
    kind: str
    client: str
    invoked_at: float
    responded_at: Optional[float] = None
    value: Optional[bytes] = None
    tag: Optional[object] = None
    failed: bool = False

    @property
    def is_complete(self) -> bool:
        return self.responded_at is not None

    @property
    def duration(self) -> Optional[float]:
        if self.responded_at is None:
            return None
        return self.responded_at - self.invoked_at

    def precedes(self, other: "OperationRecord") -> bool:
        """Real-time precedence: this op responded before the other was invoked."""
        return self.responded_at is not None and self.responded_at < other.invoked_at

    def concurrent_with(self, other: "OperationRecord") -> bool:
        return not self.precedes(other) and not other.precedes(self)


class StreamObserver:
    """Callbacks a sink invokes as operation events are recorded.

    The default implementations are no-ops so observers only override the
    events they care about.
    """

    def on_invoke(self, record: OperationRecord) -> None:  # pragma: no cover
        pass

    def on_complete(self, record: OperationRecord) -> None:  # pragma: no cover
        pass

    def on_failed(self, record: OperationRecord) -> None:  # pragma: no cover
        pass


class HistorySink(ABC):
    """The narrow interface protocol clients record operations through.

    Concrete sinks provide storage via :meth:`_store`, :meth:`_lookup` and
    :meth:`_retire`; the event validation, record bookkeeping and observer
    dispatch live here so every sink records identically.
    """

    def __init__(self) -> None:
        self._observers: List[StreamObserver] = []
        self.invoked_count = 0
        self.completed_count = 0
        self.failed_count = 0

    # ------------------------------------------------------------------
    # observers
    # ------------------------------------------------------------------
    def subscribe(self, observer: StreamObserver) -> StreamObserver:
        """Register an observer; returns it for chaining."""
        self._observers.append(observer)
        return observer

    def unsubscribe(self, observer: StreamObserver) -> None:
        """Detach an observer (no-op if it was never subscribed).

        Transient observers — e.g. the closed-loop driver behind one
        :meth:`~repro.runtime.cluster.RegisterCluster.run_streamed` call —
        detach themselves so repeated runs do not accumulate dead
        observers on a long-lived sink.
        """
        try:
            self._observers.remove(observer)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    # recording (shared semantics)
    # ------------------------------------------------------------------
    def invoke(
        self, op_id: str, kind: str, client: str, time: float, value: Optional[bytes] = None
    ) -> OperationRecord:
        if kind not in (WRITE, READ):
            raise ValueError(f"unknown operation kind {kind!r}")
        record = OperationRecord(
            op_id=op_id, kind=kind, client=client, invoked_at=time, value=value
        )
        self._store(record)
        self.invoked_count += 1
        for observer in self._observers:
            observer.on_invoke(record)
        return record

    def respond(
        self,
        op_id: str,
        time: float,
        *,
        value: Optional[bytes] = None,
        tag: Optional[object] = None,
    ) -> OperationRecord:
        record = self._require(op_id)
        if record.responded_at is not None:
            raise ValueError(f"operation {op_id!r} already completed")
        if time < record.invoked_at:
            raise ValueError("response cannot precede invocation")
        record.responded_at = time
        if value is not None:
            record.value = value
        if tag is not None:
            record.tag = tag
        self.completed_count += 1
        for observer in self._observers:
            observer.on_complete(record)
        self._retire(record)
        return record

    def mark_failed(self, op_id: str) -> None:
        record = self._require(op_id)
        record.failed = True
        self.failed_count += 1
        for observer in self._observers:
            observer.on_failed(record)
        if not record.is_complete:
            # A failed incomplete operation will never respond (its client
            # crashed), so windowed sinks may retire it now — otherwise
            # abandoned records would accumulate for the whole run.
            self._retire(record)

    def get(self, op_id: str) -> OperationRecord:
        return self._require(op_id)

    def _require(self, op_id: str) -> OperationRecord:
        record = self._lookup(op_id)
        if record is None:
            raise ValueError(
                f"unknown operation id {op_id!r}: never invoked on this "
                f"recorder, or already evicted from its retirement window"
            )
        return record

    # ------------------------------------------------------------------
    # storage hooks
    # ------------------------------------------------------------------
    @abstractmethod
    def _store(self, record: OperationRecord) -> None:
        """Remember a newly invoked operation (op_id already validated unique)."""

    @abstractmethod
    def _lookup(self, op_id: str) -> Optional[OperationRecord]:
        """Find a resident operation, or None if unknown/evicted."""

    def _retire(self, record: OperationRecord) -> None:
        """Called after a record completes; windowed sinks may evict here."""


class StreamingRecorder(HistorySink):
    """A bounded-memory sink for long executions.

    In-flight operations are always resident (clients are well-formed, so
    their number is bounded by the client count); completed operations stay
    resident in a FIFO window of ``window`` records and are then evicted.
    Aggregate counters and the peak resident size survive eviction, so a
    workload driver can still report completion ratios, and subscribed
    observers (the incremental checker) see every event exactly once.
    """

    def __init__(self, window: int = 1024) -> None:
        super().__init__()
        if window < 0:
            raise ValueError("window must be non-negative")
        self.window = window
        self._active: Dict[str, OperationRecord] = {}
        self._retired: "OrderedDict[str, OperationRecord]" = OrderedDict()
        self.evicted_count = 0
        self.max_resident = 0

    # -- storage hooks ---------------------------------------------------
    def _store(self, record: OperationRecord) -> None:
        if record.op_id in self._active or record.op_id in self._retired:
            raise ValueError(f"duplicate operation id {record.op_id!r}")
        self._active[record.op_id] = record
        resident = len(self._active) + len(self._retired)
        if resident > self.max_resident:
            self.max_resident = resident

    def _lookup(self, op_id: str) -> Optional[OperationRecord]:
        record = self._active.get(op_id)
        if record is None:
            record = self._retired.get(op_id)
        return record

    def _retire(self, record: OperationRecord) -> None:
        self._active.pop(record.op_id, None)
        self._retired[record.op_id] = record
        while len(self._retired) > self.window:
            self._retired.popitem(last=False)
            self.evicted_count += 1
        resident = len(self._active) + len(self._retired)
        if resident > self.max_resident:
            self.max_resident = resident

    # -- introspection ---------------------------------------------------
    @property
    def resident_count(self) -> int:
        """Number of records currently held in memory."""
        return len(self._active) + len(self._retired)

    def in_flight(self) -> List[OperationRecord]:
        return list(self._active.values())

    def __len__(self) -> int:
        return self.invoked_count


def iter_observers(sink: HistorySink) -> tuple:
    """The sink's subscribed observers, as an immutable snapshot.

    The observer list is sink-private; runtime layers that need to
    introspect it — e.g. :class:`~repro.runtime.cluster.RegisterCluster`
    binding unbound :class:`CheckerBatcher`\\ s to its simulation — go
    through this helper instead of reaching into ``_observers``, keeping
    the :class:`HistorySink` interface itself unchanged.
    """
    return tuple(sink._observers)


class CheckerBatcher(StreamObserver):
    """Drain-batched observer shim in front of an incremental checker.

    Mirrors the :class:`~repro.erasure.batch.ReadDecodeBatcher` pattern:
    the first event recorded during an event-loop drain opens a checker
    batch (:meth:`~repro.consistency.incremental.IncrementalAtomicityChecker.begin_batch`)
    and arms a single deferred flush via the simulation's micro-task hook;
    when the drain ends the flush closes the batch, running one crossing
    test per cluster touched instead of one per record.  The checker's
    monotone summaries make this verdict-identical to per-record checking
    (see the batching notes in :mod:`repro.consistency.incremental`).

    A batcher starts *unbound* and is a pure pass-through (per-record
    checking) until :meth:`bind` hands it a ``defer`` callable — a
    :class:`~repro.runtime.cluster.RegisterCluster` binds any unbound
    batchers it finds among its recorder's observers at construction, so
    callers can subscribe the batcher before the simulation exists::

        recorder = StreamingRecorder(window=256)
        batcher = recorder.subscribe(CheckerBatcher(checker))
        cluster = make_cluster(..., recorder=recorder)   # binds batcher
    """

    def __init__(self, checker) -> None:
        self.checker = checker
        self._defer = None
        self._armed = False
        #: Completed drain-batches (diagnostics, mirrors ReadDecodeBatcher).
        self.flushes = 0

    @property
    def bound(self) -> bool:
        return self._defer is not None

    def bind(self, defer) -> None:
        """Attach the per-drain micro-task hook (idempotent for the same
        hook; rebinding to a different simulation is a caller bug)."""
        if self._defer is not None and self._defer is not defer:
            raise RuntimeError("CheckerBatcher is already bound to a simulation")
        self._defer = defer

    def _arm(self) -> None:
        self._armed = True
        self.checker.begin_batch()
        self._defer(self._flush)

    def _flush(self) -> None:
        if self._armed:
            self._armed = False
            self.checker.end_batch()
            self.flushes += 1

    def flush(self) -> None:
        """Force any deferred crossing tests to run now.

        Safe at any point (no-op when nothing is pending); callers export
        verdicts only after this.  An already-armed micro-task that fires
        later finds the batch closed and does nothing.
        """
        self._flush()

    # -- observer callbacks: open a batch lazily, then forward ----------
    def on_invoke(self, record: OperationRecord) -> None:
        if self._defer is not None and not self._armed:
            self._arm()
        self.checker.on_invoke(record)

    def on_complete(self, record: OperationRecord) -> None:
        if self._defer is not None and not self._armed:
            self._arm()
        self.checker.on_complete(record)

    def on_failed(self, record: OperationRecord) -> None:
        self.checker.on_failed(record)
