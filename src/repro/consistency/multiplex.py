"""Per-object checker multiplexing for multi-register namespaces.

Atomicity is a per-register property: a namespace execution is correct iff
every object's projected history is linearizable on its own.  The
:class:`ObjectCheckerMux` therefore gives each object of a
:class:`~repro.runtime.namespace.MultiRegisterCluster` its own bounded
:class:`~repro.consistency.stream.StreamingRecorder` with its own
:class:`~repro.consistency.incremental.IncrementalAtomicityChecker`
subscribed — operations recorded by object ``j``'s clients flow only
through checker ``j``, so a violation on one object can never mask, nor be
masked by, the traffic of another (the isolation tests inject a violation
on a single object and assert exactly that object's checker flags it).

For epoch-sharded long runs the mux also packages its checkers into
per-object :class:`~repro.consistency.shardmerge.ShardVerdict` exports;
:func:`repro.consistency.shardmerge.merge_namespace_verdicts` then merges
each object's shards independently and aggregates the per-object verdicts
into one namespace verdict.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.consistency.incremental import IncrementalAtomicityChecker, Violation
from repro.consistency.shardmerge import ShardVerdict, shard_verdict_from_checker
from repro.consistency.stream import HistorySink, StreamingRecorder


class ObjectCheckerMux:
    """One bounded recorder + online checker per namespace object.

    Use the mux's :meth:`recorder` as the ``recorder_factory`` of a
    :class:`~repro.runtime.namespace.MultiRegisterCluster`::

        mux = ObjectCheckerMux(objects=8, window=256)
        cluster = MultiRegisterCluster("SODA", 6, 2, objects=8,
                                       recorder_factory=mux.recorder)
        ... run ...
        assert mux.ok, mux.violations()
    """

    def __init__(
        self,
        objects: int,
        *,
        window: int = 256,
        frontier_limit: int = 256,
        initial_value: bytes = b"",
        unknown_values: str = "flag",
        max_violations: int = 16,
    ) -> None:
        if objects < 1:
            raise ValueError("need at least one object")
        self.recorders: List[StreamingRecorder] = []
        self.checkers: List[IncrementalAtomicityChecker] = []
        for _ in range(objects):
            recorder = StreamingRecorder(window=window)
            checker = recorder.subscribe(
                IncrementalAtomicityChecker(
                    initial_value=initial_value,
                    frontier_limit=frontier_limit,
                    unknown_values=unknown_values,
                    max_violations=max_violations,
                )
            )
            self.recorders.append(recorder)
            self.checkers.append(checker)

    def __len__(self) -> int:
        return len(self.checkers)

    # ------------------------------------------------------------------
    # per-object access
    # ------------------------------------------------------------------
    def recorder(self, index: int) -> HistorySink:
        """Object ``index``'s sink (shaped as a ``recorder_factory``)."""
        return self.recorders[index]

    def checker(self, index: int) -> IncrementalAtomicityChecker:
        return self.checkers[index]

    # ------------------------------------------------------------------
    # aggregate verdicts
    # ------------------------------------------------------------------
    @property
    def ok(self) -> bool:
        return all(checker.ok for checker in self.checkers)

    def violations(self) -> List[Tuple[int, Violation]]:
        """Every online violation, tagged with its object index."""
        return [
            (index, violation)
            for index, checker in enumerate(self.checkers)
            for violation in checker.violations
        ]

    def flagged_objects(self) -> List[int]:
        return [i for i, checker in enumerate(self.checkers) if not checker.ok]

    @property
    def max_resident(self) -> int:
        """Peak resident records across the per-object recorders — the
        namespace's bounded-memory gauge."""
        return max(recorder.max_resident for recorder in self.recorders)

    @property
    def evicted_count(self) -> int:
        return sum(recorder.evicted_count for recorder in self.recorders)

    @property
    def ops_seen(self) -> int:
        return sum(checker.ops_seen for checker in self.checkers)

    # ------------------------------------------------------------------
    # shard exports
    # ------------------------------------------------------------------
    def shard_verdicts(self, shard_index: int) -> List[ShardVerdict]:
        """Package every object's checker state as that object's
        contribution (shard ``shard_index``) to a sharded namespace check."""
        return [
            shard_verdict_from_checker(shard_index, checker)
            for checker in self.checkers
        ]


def project_violations(
    violations: Sequence[Tuple[int, Violation]], index: int
) -> List[Violation]:
    """The subset of object-tagged ``violations`` belonging to ``index``."""
    return [violation for obj, violation in violations if obj == index]
