"""Per-object checker multiplexing for multi-register namespaces.

Atomicity is a per-register property: a namespace execution is correct iff
every object's projected history is linearizable on its own.  The
:class:`ObjectCheckerMux` therefore gives each object of a
:class:`~repro.runtime.namespace.MultiRegisterCluster` its own bounded
:class:`~repro.consistency.stream.StreamingRecorder` with its own
:class:`~repro.consistency.incremental.IncrementalAtomicityChecker`
subscribed — operations recorded by object ``j``'s clients flow only
through checker ``j``, so a violation on one object can never mask, nor be
masked by, the traffic of another (the isolation tests inject a violation
on a single object and assert exactly that object's checker flags it).

For epoch-sharded long runs the mux also packages its checkers into
per-object :class:`~repro.consistency.shardmerge.ShardVerdict` exports;
:func:`repro.consistency.shardmerge.merge_namespace_verdicts` then merges
each object's shards independently and aggregates the per-object verdicts
into one namespace verdict.

Worker-process mode
-------------------
With ``workers > 1`` the checkers move out of the simulating process:
each recorder gets a lightweight forwarding observer that buffers events
as plain tuples and ships them over a ``spawn``-safe multiprocessing
queue; worker ``w`` owns the checkers of objects ``j`` with
``j % workers == w`` and consumes their buffers concurrently with the
simulation.  Determinism is by construction: each object's event stream
is chunked at fixed counts (independent of worker count or scheduling)
and consumed by exactly one checker in stream order, so verdicts and
summary exports are byte-identical to the serial path for any worker
count.  :meth:`ObjectCheckerMux.finish` drains the queues and collects
the per-object exports; the verdict accessors then serve them locally.
In serial mode checkers sit behind
:class:`~repro.consistency.stream.CheckerBatcher` shims, so crossing
tests run once per event-loop drain there too.

Spawning children is impossible from a daemonic process (the sweep and
fleet pools' workers are daemonic), so a mux constructed inside one falls
back to serial checking with a :class:`RuntimeWarning` (via
:func:`repro.analysis.pool.resolve_workers`) — same results, by the
construction above, just without the extra processes.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
from typing import Dict, List, Optional, Sequence, Tuple

from repro.consistency.incremental import IncrementalAtomicityChecker, Violation
from repro.consistency.shardmerge import ShardVerdict, shard_verdict_from_checker
from repro.consistency.stream import (
    CheckerBatcher,
    HistorySink,
    OperationRecord,
    StreamObserver,
    StreamingRecorder,
)

#: Events buffered per object before a forwarding flush.  Chunk boundaries
#: depend only on the object's own event sequence, which is what makes
#: worker-mode output independent of the worker count.
_FORWARD_CHUNK = 512

_INVOKE = 0
_COMPLETE = 1


class _ForwardingObserver(StreamObserver):
    """Buffers one object's events as tuples and ships them to a worker."""

    __slots__ = ("_queue", "_index", "_buffer")

    def __init__(self, queue, index: int) -> None:
        self._queue = queue
        self._index = index
        self._buffer: list = []

    def on_invoke(self, record: OperationRecord) -> None:
        self._buffer.append(
            (
                _INVOKE,
                record.op_id,
                record.kind,
                record.client,
                record.invoked_at,
                record.value,
            )
        )
        if len(self._buffer) >= _FORWARD_CHUNK:
            self.flush()

    def on_complete(self, record: OperationRecord) -> None:
        self._buffer.append(
            (
                _COMPLETE,
                record.op_id,
                record.kind,
                record.client,
                record.invoked_at,
                record.responded_at,
                record.value,
            )
        )
        if len(self._buffer) >= _FORWARD_CHUNK:
            self.flush()

    # on_failed is not forwarded: the checker's on_failed is a no-op.

    def flush(self) -> None:
        if self._buffer:
            self._queue.put((self._index, self._buffer))
            self._buffer = []


def _checker_worker(
    task_queue,
    result_queue,
    object_indices: Sequence[int],
    checker_kwargs: Dict[str, object],
) -> None:
    """Worker entry (module-level, hence spawn-picklable): consume event
    chunks for the owned objects until the ``None`` sentinel, then export
    each checker's picklable final state."""
    checkers = {
        index: IncrementalAtomicityChecker(**checker_kwargs)
        for index in object_indices
    }
    while True:
        item = task_queue.get()
        if item is None:
            break
        index, events = item
        checker = checkers[index]
        checker.begin_batch()
        for event in events:
            if event[0] == _INVOKE:
                checker.on_invoke(
                    OperationRecord(
                        op_id=event[1],
                        kind=event[2],
                        client=event[3],
                        invoked_at=event[4],
                        value=event[5],
                    )
                )
            else:
                checker.on_complete(
                    OperationRecord(
                        op_id=event[1],
                        kind=event[2],
                        client=event[3],
                        invoked_at=event[4],
                        responded_at=event[5],
                        value=event[6],
                    )
                )
        checker.end_batch()
    result_queue.put(
        {
            index: {
                "ops_seen": checker.ops_seen,
                "reads_checked": checker.reads_checked,
                "reopened_clusters": checker.reopened_clusters,
                "violations": tuple(checker.violations),
                "duplicate_claims": tuple(checker.duplicate_write_claims),
                "summaries": tuple(checker.cluster_summaries()),
            }
            for index, checker in checkers.items()
        }
    )


class ObjectCheckerMux:
    """One bounded recorder + online checker per namespace object.

    Use the mux's :meth:`recorder` as the ``recorder_factory`` of a
    :class:`~repro.runtime.namespace.MultiRegisterCluster`::

        mux = ObjectCheckerMux(objects=8, window=256)
        cluster = MultiRegisterCluster("SODA", 6, 2, objects=8,
                                       recorder_factory=mux.recorder)
        ... run ...
        mux.finish()
        assert mux.ok, mux.violations()

    ``workers > 1`` moves the checkers into that many spawned worker
    processes (see the module docstring); :meth:`finish` is then required
    before any verdict accessor.  In serial mode :meth:`finish` is a cheap
    always-safe flush.
    """

    def __init__(
        self,
        objects: int,
        *,
        window: int = 256,
        frontier_limit: int = 256,
        initial_value: bytes = b"",
        unknown_values: str = "flag",
        max_violations: int = 16,
        workers: int = 1,
    ) -> None:
        if objects < 1:
            raise ValueError("need at least one object")
        if workers < 1:
            raise ValueError("need at least one worker")
        checker_kwargs = dict(
            initial_value=initial_value,
            frontier_limit=frontier_limit,
            unknown_values=unknown_values,
            max_violations=max_violations,
        )
        workers = min(workers, objects)
        if workers > 1:
            # Daemonic processes (e.g. sweep-pool or fleet-cell workers)
            # cannot spawn children; the shared pool helper degrades the
            # request to serial checking with a loud warning — results
            # are byte-identical by construction, only slower.  Imported
            # lazily: repro.analysis pulls in this module at package
            # import time.
            from repro.analysis.pool import resolve_workers

            workers = resolve_workers(
                workers, what="ObjectCheckerMux checker workers"
            )
        #: Effective worker count after capping and the daemon fallback.
        self.workers = workers
        self.recorders: List[StreamingRecorder] = [
            StreamingRecorder(window=window) for _ in range(objects)
        ]
        self.checkers: List[IncrementalAtomicityChecker] = []
        self._finished = False
        self._exports: Optional[Dict[int, Dict[str, object]]] = None
        self._violations_cache: Optional[List[Tuple[int, Violation]]] = None
        self._violations_key = -1
        self._flagged_cache: Optional[List[int]] = None
        self._flagged_key = -1

        if workers == 1:
            self._batchers: List[CheckerBatcher] = []
            for recorder in self.recorders:
                checker = IncrementalAtomicityChecker(**checker_kwargs)
                # The batcher stays unbound until the object's
                # RegisterCluster binds it to the shared simulation's
                # micro-task hook (pass-through per-op checking until then).
                self._batchers.append(recorder.subscribe(CheckerBatcher(checker)))
                self.checkers.append(checker)
            self._processes: List[multiprocessing.Process] = []
            self._task_queues: list = []
            self._result_queues: list = []
            self._forwarders: List[_ForwardingObserver] = []
        else:
            context = multiprocessing.get_context("spawn")
            self._batchers = []
            self._task_queues = [context.SimpleQueue() for _ in range(workers)]
            # Plain Queues for results: their timed get() lets finish()
            # notice a dead worker instead of blocking forever.
            self._result_queues = [context.Queue() for _ in range(workers)]
            self._forwarders = []
            for index, recorder in enumerate(self.recorders):
                forwarder = _ForwardingObserver(
                    self._task_queues[index % workers], index
                )
                recorder.subscribe(forwarder)
                self._forwarders.append(forwarder)
            self._processes = []
            for worker in range(workers):
                owned = list(range(worker, objects, workers))
                process = context.Process(
                    target=_checker_worker,
                    args=(
                        self._task_queues[worker],
                        self._result_queues[worker],
                        owned,
                        checker_kwargs,
                    ),
                    daemon=True,
                )
                process.start()
                self._processes.append(process)

    def __len__(self) -> int:
        return len(self.recorders)

    # ------------------------------------------------------------------
    # per-object access
    # ------------------------------------------------------------------
    def recorder(self, index: int) -> HistorySink:
        """Object ``index``'s sink (shaped as a ``recorder_factory``)."""
        return self.recorders[index]

    def checker(self, index: int) -> IncrementalAtomicityChecker:
        if not self.checkers:
            raise RuntimeError(
                "checkers live in worker processes in workers>1 mode; "
                "use shard_verdict()/object_ok() after finish()"
            )
        return self.checkers[index]

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def finish(self) -> None:
        """Flush all pending checking and (in worker mode) collect the
        per-object exports.  Idempotent; required before verdict accessors
        in worker mode, a cheap no-op-ish flush in serial mode."""
        if self._finished:
            return
        if self.checkers:
            for batcher in self._batchers:
                batcher.flush()
        else:
            for forwarder in self._forwarders:
                forwarder.flush()
            for tasks in self._task_queues:
                tasks.put(None)
            exports: Dict[int, Dict[str, object]] = {}
            for results, process in zip(self._result_queues, self._processes):
                while True:
                    try:
                        exports.update(results.get(timeout=1.0))
                        break
                    except queue_module.Empty:
                        if not process.is_alive():
                            raise RuntimeError(
                                "checker worker died before exporting results"
                            ) from None
            for process in self._processes:
                process.join()
            self._exports = exports
        self._finished = True

    def _export(self, index: int) -> Dict[str, object]:
        if self._exports is None:
            raise RuntimeError(
                "ObjectCheckerMux.finish() must run before reading verdicts "
                "in workers>1 mode"
            )
        return self._exports[index]

    # ------------------------------------------------------------------
    # aggregate verdicts
    # ------------------------------------------------------------------
    def object_ok(self, index: int) -> bool:
        if self.checkers:
            return self.checkers[index].ok
        return not self._export(index)["violations"]

    def object_violations(self, index: int) -> Tuple[Violation, ...]:
        if self.checkers:
            return tuple(self.checkers[index].violations)
        return self._export(index)["violations"]  # type: ignore[return-value]

    @property
    def ok(self) -> bool:
        return all(self.object_ok(index) for index in range(len(self)))

    def violations(self) -> List[Tuple[int, Violation]]:
        """Every online violation, tagged with its object index.

        Cached: longrun drivers poll this per epoch, so rebuilding the
        full list on every access is wasted work on the (overwhelmingly
        common) unchanged-count path.  The cache key is the total
        violation count — violation lists are append-only, so an unchanged
        count means an unchanged list.
        """
        key = self._violation_count()
        if self._violations_cache is None or key != self._violations_key:
            self._violations_cache = [
                (index, violation)
                for index in range(len(self))
                for violation in self.object_violations(index)
            ]
            self._violations_key = key
        return self._violations_cache

    def flagged_objects(self) -> List[int]:
        key = self._violation_count()
        if self._flagged_cache is None or key != self._flagged_key:
            self._flagged_cache = [
                index for index in range(len(self)) if not self.object_ok(index)
            ]
            self._flagged_key = key
        return self._flagged_cache

    def _violation_count(self) -> int:
        if self.checkers:
            return sum(len(checker.violations) for checker in self.checkers)
        # Worker mode: exports are final, any key works after finish().
        self._export(0)
        return 0

    @property
    def max_resident(self) -> int:
        """Peak resident records across the per-object recorders — the
        namespace's bounded-memory gauge."""
        return max(recorder.max_resident for recorder in self.recorders)

    @property
    def evicted_count(self) -> int:
        return sum(recorder.evicted_count for recorder in self.recorders)

    @property
    def ops_seen(self) -> int:
        if self.checkers:
            return sum(checker.ops_seen for checker in self.checkers)
        return sum(
            self._export(index)["ops_seen"] for index in range(len(self))  # type: ignore[misc]
        )

    # ------------------------------------------------------------------
    # shard exports
    # ------------------------------------------------------------------
    def shard_verdict(self, shard_index: int, index: int) -> ShardVerdict:
        """Object ``index``'s contribution (shard ``shard_index``) to a
        sharded namespace check."""
        if self.checkers:
            return shard_verdict_from_checker(shard_index, self.checkers[index])
        export = self._export(index)
        return ShardVerdict(
            index=shard_index,
            ops_seen=export["ops_seen"],  # type: ignore[arg-type]
            reads_checked=export["reads_checked"],  # type: ignore[arg-type]
            summaries=export["summaries"],  # type: ignore[arg-type]
            duplicate_claims=export["duplicate_claims"],  # type: ignore[arg-type]
            violations=export["violations"],  # type: ignore[arg-type]
        )

    def shard_verdicts(self, shard_index: int) -> List[ShardVerdict]:
        """Package every object's checker state as that object's
        contribution (shard ``shard_index``) to a sharded namespace check."""
        return [
            self.shard_verdict(shard_index, index) for index in range(len(self))
        ]


def project_violations(
    violations: Sequence[Tuple[int, Violation]], index: int
) -> List[Violation]:
    """The subset of object-tagged ``violations`` belonging to ``index``."""
    return [violation for obj, violation in violations if obj == index]
