"""Shard-merge atomicity checking: split one long run, merge one verdict.

The incremental checker in :mod:`repro.consistency.incremental` consumes a
*single* operation stream.  To check a million-operation run that was
executed as shards (epochs of a long real-cluster simulation fanned out
over a process pool, or slices of one recorded history), each shard runs
its own incremental checker and exports compact, picklable
:class:`~repro.consistency.incremental.ClusterSummary` rows; this module
merges those exports into one canonical verdict:

1. **Cluster reconciliation** — partial summaries of the same write value
   from different shards combine by ``max`` of the latest member
   invocation ``a`` and ``min`` of the earliest member response ``b`` (the
   only statistics the crossing test needs), resolving write ownership and
   cross-shard duplicates along the way.
2. **Feasibility re-checks** — unwritten values and read-from-future
   blocks are recomputed from the merged clusters, because a shard that
   saw only the reads of a value cannot decide them locally (the checker's
   ``unknown_values="defer"`` mode postpones exactly these).
3. **Boundary-crossing reconciliation** — one global staircase sweep over
   every merged cluster re-runs the pairwise crossing test, so blocks that
   straddle a shard boundary are ordered against each other exactly as a
   single-process checker would have ordered them.

Because the merge consumes only the canonical per-shard summaries (sorted
exports, value digests, floats), the merged verdict is a pure function of
the shard contents: it is byte-identical however many worker processes
produced the shards, and — as the differential fuzz suite asserts against
WGL and the single-stream checker — equal to the single-process verdict.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.consistency.history import History
from repro.consistency.incremental import (
    ClusterSummary,
    IncrementalAtomicityChecker,
    Violation,
    _value_key,
    replay_operations,
)


@dataclass(frozen=True)
class ShardVerdict:
    """What one shard of a long run contributes to the merged check.

    ``violations`` holds the shard checker's *local* online findings (they
    give early failure signals mid-run); the merged verdict is recomputed
    canonically from ``summaries``/``duplicate_claims`` so it cannot depend
    on shard-local event order.
    """

    index: int
    ops_seen: int
    reads_checked: int
    summaries: Tuple[ClusterSummary, ...]
    duplicate_claims: Tuple[Tuple[bytes, str, float], ...] = ()
    violations: Tuple[Violation, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.violations


def shard_verdict_from_checker(
    index: int, checker: IncrementalAtomicityChecker
) -> ShardVerdict:
    """Package a shard checker's final state for the merge."""
    return ShardVerdict(
        index=index,
        ops_seen=checker.ops_seen,
        reads_checked=checker.reads_checked,
        summaries=tuple(checker.cluster_summaries()),
        duplicate_claims=tuple(checker.duplicate_write_claims),
        violations=tuple(checker.violations),
    )


def shift_summary(summary: ClusterSummary, offset: float) -> ClusterSummary:
    """Shift a summary's finite times by ``offset`` (infinities survive).

    Long-run epochs each simulate from local time zero; the merge places
    epoch ``k`` at a deterministic global offset so shard time ranges are
    disjoint, and this helper rebases the exported summaries.
    """

    def move(t: float) -> float:
        return t + offset if math.isfinite(t) else t

    return summary._replace(
        write_invoked=move(summary.write_invoked),
        max_inv=move(summary.max_inv),
        min_resp=move(summary.min_resp),
        min_read_resp=move(summary.min_read_resp),
        first_read_inv=move(summary.first_read_inv),
    )


@dataclass
class _MergedCluster:
    """Accumulator for one write value across shards."""

    a: float = -math.inf  # max member invocation
    b: float = math.inf  # min member response
    min_read_resp: float = math.inf
    reads: int = 0
    first_read_inv: float = math.inf
    first_read_id: Optional[str] = None
    initial: bool = False
    #: (write_invoked, write_id) claims from shard summaries + duplicates.
    claims: List[Tuple[float, str]] = field(default_factory=list)


@dataclass(frozen=True)
class MergedCheckResult:
    """The canonical verdict of a sharded check — truthy iff no violation."""

    ok: bool
    violations: Tuple[Violation, ...] = ()
    shards: int = 0
    ops_seen: int = 0
    reads_checked: int = 0
    clusters: int = 0
    crossings_tested: int = 0

    def __bool__(self) -> bool:
        return self.ok

    def to_jsonable(self) -> Dict[str, object]:
        """A deterministic, JSON-serialisable rendering of the verdict."""
        return {
            "ok": self.ok,
            "shards": self.shards,
            "ops_seen": self.ops_seen,
            "reads_checked": self.reads_checked,
            "clusters": self.clusters,
            "crossings_tested": self.crossings_tested,
            "violations": [
                {
                    "kind": v.kind,
                    "description": v.description,
                    "op_ids": list(v.op_ids),
                }
                for v in self.violations
            ],
        }


def merge_shard_verdicts(
    shards: Sequence[ShardVerdict],
    *,
    initial_value: Optional[bytes] = b"",
    max_violations: int = 16,
) -> MergedCheckResult:
    """Reconcile per-shard summaries into one canonical verdict.

    ``initial_value`` is the register's initial value when the shards
    share one register timeline (slices of one history); pass ``None``
    when every shard modelled its own initial state as an explicit
    marker-write summary (the long-run engine does), in which case no
    distinguished initial cluster is expected.
    """
    initial_key = _value_key(initial_value) if initial_value is not None else None
    merged: Dict[bytes, _MergedCluster] = {}

    for shard in shards:
        for s in shard.summaries:
            cluster = merged.setdefault(s.key, _MergedCluster())
            if s.initial:
                if initial_key is None:
                    raise ValueError(
                        f"shard {shard.index} exported an initial-value cluster "
                        f"but the merge was told there is none (initial_value="
                        f"None); rewrite epoch initials as marker writes first"
                    )
                if s.key != initial_key:
                    raise ValueError(
                        f"shard {shard.index} used a different initial value "
                        f"than the merge"
                    )
                cluster.initial = True
            elif s.has_write:
                cluster.claims.append((s.write_invoked, s.write_id))
            cluster.a = max(cluster.a, s.max_inv)
            cluster.b = min(cluster.b, s.min_resp)
            cluster.min_read_resp = min(cluster.min_read_resp, s.min_read_resp)
            cluster.reads += s.reads
            if s.first_read_id is not None and (
                s.first_read_inv,
                s.first_read_id,
            ) < (cluster.first_read_inv, cluster.first_read_id or ""):
                cluster.first_read_inv = s.first_read_inv
                cluster.first_read_id = s.first_read_id
        for key, op_id, invoked_at in shard.duplicate_claims:
            merged.setdefault(key, _MergedCluster()).claims.append(
                (invoked_at, op_id)
            )

    violations: List[Violation] = []

    def flag(v: Violation) -> None:
        violations.append(v)

    # --- write ownership: duplicates across (and within) shards ----------
    for key, cluster in merged.items():
        claims = sorted(set(cluster.claims))
        if cluster.initial and claims:
            # Writes colliding with the initial value digest: every claim
            # duplicates the distinguished initial cluster.
            for _, op_id in claims:
                flag(
                    Violation(
                        "duplicate-write-value",
                        f"write {op_id} repeats the register's initial value; "
                        f"the register checker requires pairwise distinct writes",
                        (op_id,),
                    )
                )
            continue
        for _, op_id in claims[1:]:
            flag(
                Violation(
                    "duplicate-write-value",
                    f"write {op_id} repeats a previously written value; "
                    f"the register checker requires pairwise distinct writes",
                    (op_id,),
                )
            )

    # --- feasibility of each merged block --------------------------------
    for key, cluster in merged.items():
        if cluster.initial:
            continue
        if not cluster.claims:
            if cluster.reads:
                flag(
                    Violation(
                        "unwritten-value",
                        f"read {cluster.first_read_id} returned a value no "
                        f"shard ever saw written (and not the initial value)",
                        (cluster.first_read_id or "?",),
                    )
                )
            continue
        write_invoked, write_id = min(cluster.claims)
        if cluster.min_read_resp < write_invoked:
            flag(
                Violation(
                    "read-from-future",
                    f"a read of write {write_id}'s value responded before "
                    f"the write was invoked",
                    (cluster.first_read_id or "?", write_id),
                )
            )

    # --- boundary-crossing reconciliation: one global staircase sweep ----
    # Participants mirror the single-stream checker: clusters with at least
    # one responded member (b < inf) and a resolved write (or the initial
    # cluster / reads of it).  Entries are processed in (b, a, id) order;
    # for each cluster the max-a over strictly-smaller-b predecessors
    # decides whether any pair mutually precedes the other.
    entries: List[Tuple[float, float, str]] = []
    for key, cluster in merged.items():
        if cluster.initial:
            ident = "<initial>"
        elif cluster.claims:
            ident = min(cluster.claims)[1]
        else:
            continue  # unwritten value: already flagged, no block to order
        if cluster.b == math.inf:
            continue  # no member ever responded: cannot cross anything
        entries.append((cluster.b, cluster.a, ident))
    entries.sort()
    seen_b: List[float] = []
    prefix_best: List[Tuple[float, str]] = []  # running (max a, its id)
    crossings_tested = 0
    crossing_pairs: List[Tuple[str, str]] = []
    for b, a, ident in entries:
        cut = bisect.bisect_left(seen_b, a)
        crossings_tested += 1
        if cut > 0:
            best_a, best_id = prefix_best[cut - 1]
            if best_a > b:
                crossing_pairs.append(tuple(sorted((ident, best_id))))
        seen_b.append(b)
        if not prefix_best or a > prefix_best[-1][0]:
            prefix_best.append((a, ident))
        else:
            prefix_best.append(prefix_best[-1])
    for first, second in sorted(set(crossing_pairs)):
        flag(
            Violation(
                "cluster-cycle",
                f"operations around write {first} and write {second} mutually "
                f"precede each other across the sharded stream; no "
                f"linearisation can order their blocks",
                (first, second),
            )
        )

    violations.sort(key=lambda v: (v.kind, v.op_ids))
    violations = violations[:max_violations]
    return MergedCheckResult(
        ok=not violations,
        violations=tuple(violations),
        shards=len(shards),
        ops_seen=sum(s.ops_seen for s in shards),
        reads_checked=sum(s.reads_checked for s in shards),
        clusters=len(merged),
        crossings_tested=crossings_tested,
    )


@dataclass(frozen=True)
class NamespaceCheckResult:
    """The verdict of a multi-object (namespace) sharded check.

    ``per_object[j]`` is object ``j``'s own :class:`MergedCheckResult` —
    produced by exactly the same :func:`merge_shard_verdicts` pass a
    single-register run uses, applied to that object's shards only.  The
    namespace verdict is their conjunction: atomicity composes per
    register, so a namespace execution is correct iff every object's
    projected history is linearizable.
    """

    ok: bool
    per_object: Tuple[MergedCheckResult, ...]

    def __bool__(self) -> bool:
        return self.ok

    @property
    def objects(self) -> int:
        return len(self.per_object)

    @property
    def shards(self) -> int:
        return max((v.shards for v in self.per_object), default=0)

    @property
    def ops_seen(self) -> int:
        return sum(v.ops_seen for v in self.per_object)

    @property
    def reads_checked(self) -> int:
        return sum(v.reads_checked for v in self.per_object)

    @property
    def clusters(self) -> int:
        return sum(v.clusters for v in self.per_object)

    @property
    def crossings_tested(self) -> int:
        return sum(v.crossings_tested for v in self.per_object)

    def flagged_objects(self) -> List[int]:
        return [j for j, verdict in enumerate(self.per_object) if not verdict.ok]

    def violations(self) -> List[Tuple[int, Violation]]:
        """Every merged violation, tagged with its object index."""
        return [
            (j, violation)
            for j, verdict in enumerate(self.per_object)
            for violation in verdict.violations
        ]

    def to_jsonable(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "objects": self.objects,
            "shards": self.shards,
            "ops_seen": self.ops_seen,
            "reads_checked": self.reads_checked,
            "clusters": self.clusters,
            "crossings_tested": self.crossings_tested,
            "flagged_objects": self.flagged_objects(),
            "per_object": [verdict.to_jsonable() for verdict in self.per_object],
        }


def merge_namespace_verdicts(
    shards_by_object: Sequence[Sequence[ShardVerdict]],
    *,
    initial_value: Optional[bytes] = b"",
    max_violations: int = 16,
) -> NamespaceCheckResult:
    """Merge a namespace run's shards **per object**, then aggregate.

    ``shards_by_object[j]`` holds object ``j``'s shard exports (one per
    epoch of a sharded long run).  Each object is merged independently —
    objects are separate registers, so their summaries must never be
    reconciled against each other — and the per-object verdicts are
    combined into one :class:`NamespaceCheckResult`.
    """
    per_object = tuple(
        merge_shard_verdicts(
            shards, initial_value=initial_value, max_violations=max_violations
        )
        for shards in shards_by_object
    )
    return NamespaceCheckResult(
        ok=all(verdict.ok for verdict in per_object), per_object=per_object
    )


def check_history_sharded(
    history: History,
    *,
    shards: int = 2,
    initial_value: bytes = b"",
    frontier_limit: int = 256,
    max_violations: int = 16,
) -> MergedCheckResult:
    """Check a recorded history through the shard-merge path.

    Operations are ordered by invocation time and split into ``shards``
    contiguous slices; each slice is replayed through its own incremental
    checker in ``defer`` mode (a slice may read values written in an
    earlier slice), and the per-shard exports are merged.  This is the
    third leg of the differential fuzz suite: its verdict must agree with
    both WGL and the single-stream incremental checker on any history.
    """
    if shards < 1:
        raise ValueError("shards must be at least 1")
    ops = sorted(history.operations(), key=lambda op: (op.invoked_at, op.op_id))
    bounds = [round(i * len(ops) / shards) for i in range(shards + 1)]
    verdicts: List[ShardVerdict] = []
    for index in range(shards):
        checker = IncrementalAtomicityChecker(
            initial_value=initial_value,
            frontier_limit=frontier_limit,
            unknown_values="defer",
        )
        replay_operations(checker, ops[bounds[index] : bounds[index + 1]])
        verdicts.append(shard_verdict_from_checker(index, checker))
    return merge_shard_verdicts(
        verdicts, initial_value=initial_value, max_violations=max_violations
    )
