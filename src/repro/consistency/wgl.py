"""Black-box linearizability checking for read/write registers.

This is a Wing–Gong style exhaustive search with the Lowe memoisation
optimisation, specialised to a single atomic register: the abstract state
is just the current register value, a write sets it and a read must return
it.  The checker only looks at invocation/response times and values — it is
completely independent of the tag machinery used by the protocols and by
the Lemma 2.1 check, which makes it a strong cross-validation of both.

Scope and assumptions
---------------------
* Write values must be pairwise distinct (workloads in this repository
  guarantee it by embedding a sequence number in each value).  This keeps
  the search sound when incomplete writes are involved.
* Incomplete operations: an incomplete *write* whose value was returned by
  some completed read is treated as pending with an infinite response time
  (it must be linearised); other incomplete operations are discarded (they
  are allowed to "not have taken effect").  With distinct write values this
  preserves both soundness and completeness.
* Complexity is exponential in the degree of concurrency, which is fine for
  the workload sizes used in tests and benchmarks (tens of operations,
  small concurrent windows).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Tuple

from repro.consistency.history import READ, WRITE, History


@dataclass(frozen=True)
class _Op:
    """Internal, immutable view of an operation used by the search."""

    op_id: str
    kind: str
    value: Optional[bytes]
    invoked_at: float
    responded_at: float  # math.inf for pending-but-required operations


class LinearizabilityResult:
    """Outcome of a check: truthy iff the history is linearizable."""

    def __init__(self, ok: bool, witness: Optional[List[str]] = None, reason: str = "") -> None:
        self.ok = ok
        self.witness = witness or []
        self.reason = reason

    def __bool__(self) -> bool:
        return self.ok

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        status = "linearizable" if self.ok else f"NOT linearizable ({self.reason})"
        return f"LinearizabilityResult({status})"


def _prepare_operations(history: History) -> List[_Op]:
    ops: List[_Op] = []
    complete = history.complete_operations()
    observed_values = {
        op.value for op in complete if op.kind == READ and op.value is not None
    }
    write_values = [op.value for op in history.writes()]
    if len(set(write_values)) != len(write_values):
        raise ValueError(
            "the WGL register checker requires pairwise distinct write values"
        )
    for op in complete:
        ops.append(
            _Op(op.op_id, op.kind, op.value, op.invoked_at, op.responded_at)
        )
    for op in history.incomplete_operations():
        if op.kind == WRITE and op.value in observed_values:
            # The write took effect (someone read it) even though the writer
            # never got a response; it must appear in any linearisation.
            ops.append(_Op(op.op_id, op.kind, op.value, op.invoked_at, math.inf))
    return ops


def check_linearizability(
    history: History, *, initial_value: bytes = b""
) -> LinearizabilityResult:
    """Decide whether ``history`` is linearizable as an atomic register.

    Returns a result object that is truthy iff a valid linearisation
    exists; on success ``result.witness`` holds one linearisation (a list
    of operation ids in linearised order).
    """
    ops = _prepare_operations(history)
    if not ops:
        return LinearizabilityResult(True, witness=[])

    ids = [op.op_id for op in ops]
    by_id = {op.op_id: op for op in ops}
    all_ids: FrozenSet[str] = frozenset(ids)

    # memo maps (remaining ops, register value) -> known-failed
    failed_states: set[Tuple[FrozenSet[str], Optional[bytes]]] = set()
    witness: List[str] = []

    def minimal_candidates(remaining: FrozenSet[str]) -> List[str]:
        """Operations that may be linearised first: no other remaining
        operation responded before they were invoked."""
        earliest_response = min(by_id[i].responded_at for i in remaining)
        return [i for i in remaining if by_id[i].invoked_at <= earliest_response]

    def search(remaining: FrozenSet[str], value: Optional[bytes]) -> bool:
        if not remaining:
            return True
        key = (remaining, value)
        if key in failed_states:
            return False
        for op_id in minimal_candidates(remaining):
            op = by_id[op_id]
            if op.kind == READ:
                if op.value != value:
                    continue
                next_value = value
            else:
                next_value = op.value
            witness.append(op_id)
            if search(remaining - {op_id}, next_value):
                return True
            witness.pop()
        failed_states.add(key)
        return False

    ok = search(all_ids, initial_value)
    if ok:
        return LinearizabilityResult(True, witness=list(witness))
    return LinearizabilityResult(
        False,
        reason="no valid linearisation of the recorded operations exists",
    )
