"""Incremental (online) atomicity checking for distinct-write-value registers.

The Wing–Gong–Lowe checker in :mod:`repro.consistency.wgl` is exponential
in the degree of concurrency and needs the whole history in memory.  This
module checks the same property *online*, consuming the operation event
stream as operations retire, in O(ops · frontier) time and with memory
proportional to the number of distinct writes (two floats and a digest per
write) — never the full history.  It is designed to hang off a
:class:`~repro.consistency.stream.StreamingRecorder` as a
:class:`~repro.consistency.stream.StreamObserver`.

Theory (register specialisation with pairwise-distinct write values)
--------------------------------------------------------------------
Group every write ``w`` with the reads that returned its value into a
*cluster* ``C(w)``.  In any linearisation of a register history the members
of a cluster form a contiguous block (the write first, then its reads —
any interposed write would change what the reads must return), so a
linearisation is exactly a total order on clusters that respects real-time
precedence between their members.  Summarise each cluster by

* ``a(C)`` — the latest invocation time of any member, and
* ``b(C)`` — the earliest response time of any member,

so that "some member of C1 precedes some member of C2" is exactly
``b(C1) < a(C2)``.  The history is linearizable iff

1. no read responds before its write is invoked (the block is internally
   feasible), and
2. the cluster precedence digraph is acyclic.

Because edges are threshold comparisons of the (a, b) summaries, any cycle
contains a 2-cycle: take the cycle member ``Cm`` with minimal ``b``; the
cycle supplies an edge into its predecessor's successor chain with
``b(Cm) <= b(C_{m-2}) < a(C_{m-1})``, giving ``Cm -> C_{m-1}`` alongside
the cycle's ``C_{m-1} -> Cm``.  Acyclicity therefore reduces to the
*pairwise crossing test*: no two clusters with ``b(C1) < a(C2)`` and
``b(C2) < a(C1)``.  This is the classical Gibbons–Korach style polynomial
characterisation, evaluated incrementally here.

Incomplete operations follow the WGL conventions: incomplete reads are
ignored, and an incomplete write only matters once some completed read
returned its value (its cluster then has ``b`` drawn from its reads, the
write itself contributing ``+inf``); an unread incomplete write has
``b = +inf`` and can never participate in a crossing, matching WGL
discarding it.

Frontier and memory bound
-------------------------
Clusters that can still change — the write or a read of its value is
plausibly in flight — live in a bounded *frontier* dict checked pairwise.
When the frontier overflows, the least-recently-updated cluster is folded
into a compact staircase (b-sorted arrays with prefix-max of ``a``) that
answers "is there a closed cluster with ``b < t`` and ``a > s``" in
O(log n).  A late read of a closed cluster's value re-opens it (staircase
rebuilt; rare by construction).  Write values are stored only as 16-byte
BLAKE2 digests, so memory stays ~50 bytes per distinct write regardless of
payload size.
"""

from __future__ import annotations

import bisect
import hashlib
import math
from dataclasses import dataclass
from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.consistency.stream import WRITE, OperationRecord, StreamObserver

#: Digest key of the distinguished initial value / any value at time -inf.
_INITIAL = b"\x00" * 16


def _value_key(value: Optional[bytes]) -> bytes:
    if value is None:
        value = b""
    return hashlib.blake2b(value, digest_size=16).digest()


@dataclass(frozen=True)
class Violation:
    """One detected atomicity violation."""

    kind: str
    description: str
    op_ids: Tuple[str, ...] = ()

    def __str__(self) -> str:  # pragma: no cover - debugging convenience
        return f"[{self.kind}] {self.description}"


@dataclass
class _Cluster:
    """Summary of one write and the reads that returned its value."""

    write_id: str
    max_inv: float  # a(C): latest member invocation
    min_resp: float  # b(C): earliest member response (+inf while pending)
    write_invoked: float
    closed: bool = False
    #: False only for placeholder clusters created in ``defer`` mode when a
    #: read's value has no locally observed write (the write may live in
    #: another shard of a sharded run; the merge pass resolves it).
    has_write: bool = True
    #: Bookkeeping for the shard-merge reconciliation pass; these fields do
    #: not feed the crossing test.
    min_read_resp: float = math.inf
    reads: int = 0
    first_read_inv: float = math.inf
    first_read_id: Optional[str] = None

    def note_read(self, record: OperationRecord) -> None:
        self.reads += 1
        if record.responded_at is not None:
            self.min_read_resp = min(self.min_read_resp, record.responded_at)
        if (record.invoked_at, record.op_id) < (
            self.first_read_inv,
            self.first_read_id or "",
        ):
            self.first_read_inv = record.invoked_at
            self.first_read_id = record.op_id


class ClusterSummary(NamedTuple):
    """A picklable, shard-portable snapshot of one cluster's summary.

    Exported by :meth:`IncrementalAtomicityChecker.cluster_summaries` and
    consumed by :mod:`repro.consistency.shardmerge`, which combines partial
    summaries of the same write value from different shards (``max`` of
    ``max_inv``, ``min`` of ``min_resp`` …) and re-runs the global checks.
    """

    key: bytes  # 16-byte value digest
    write_id: str
    has_write: bool
    write_invoked: float
    max_inv: float
    min_resp: float
    min_read_resp: float
    reads: int
    first_read_inv: float
    first_read_id: Optional[str]
    initial: bool  # True for the checker's distinguished initial-value cluster


class IncrementalAtomicityChecker(StreamObserver):
    """Online register linearizability checker over an operation stream.

    Subscribe it to any :class:`~repro.consistency.stream.HistorySink`::

        recorder = StreamingRecorder(window=256)
        checker = recorder.subscribe(IncrementalAtomicityChecker())
        ... run the workload ...
        result = checker.result()

    or feed it records directly with :meth:`observe_invoke` /
    :meth:`observe_complete` (aliases of the observer callbacks).
    """

    def __init__(
        self,
        *,
        initial_value: bytes = b"",
        frontier_limit: int = 256,
        max_violations: int = 16,
        unknown_values: str = "flag",
    ) -> None:
        if frontier_limit < 1:
            raise ValueError("frontier_limit must be positive")
        if unknown_values not in ("flag", "defer"):
            raise ValueError(
                f"unknown_values must be 'flag' or 'defer', got {unknown_values!r}"
            )
        self.initial_value = initial_value
        self.frontier_limit = frontier_limit
        self.max_violations = max_violations
        #: ``"flag"`` treats a read of a never-written value as a violation
        #: (the whole-stream semantics); ``"defer"`` records a write-less
        #: placeholder cluster instead, for shards of a sharded run where
        #: the write may have been routed to a different shard — the merge
        #: pass in :mod:`repro.consistency.shardmerge` settles it.
        self.unknown_values = unknown_values
        self.violations: List[Violation] = []
        self.ops_seen = 0
        self.reads_checked = 0
        self.reopened_clusters = 0
        #: Every (value key, write op id, invocation time) that claimed an
        #: already-claimed value — exported so the shard merge can decide
        #: duplicates canonically across shards.
        self.duplicate_write_claims: List[Tuple[bytes, str, float]] = []

        # value digest -> cluster (authoritative, one entry per write ever)
        self._clusters: Dict[bytes, _Cluster] = {}
        # open clusters in LRU order of last update (value digest keys)
        self._frontier: Dict[bytes, None] = {}
        # closed clusters: b-sorted arrays + prefix max of a
        self._closed_b: List[float] = []
        self._closed_a_prefix_max: List[float] = []
        self._closed_a: List[float] = []
        self._closed_ids: List[str] = []

        initial = _Cluster(
            write_id="<initial>",
            max_inv=-math.inf,
            min_resp=-math.inf,
            write_invoked=-math.inf,
        )
        self._initial_key = _value_key(initial_value)
        self._clusters[self._initial_key] = initial
        self._frontier[self._initial_key] = None

    # ------------------------------------------------------------------
    # StreamObserver interface
    # ------------------------------------------------------------------
    def on_invoke(self, record: OperationRecord) -> None:
        self.ops_seen += 1
        if record.kind != WRITE:
            return
        key = _value_key(record.value)
        existing = self._clusters.get(key)
        if existing is not None:
            if existing.has_write:
                self.duplicate_write_claims.append(
                    (key, record.op_id, record.invoked_at)
                )
                self._flag(
                    Violation(
                        "duplicate-write-value",
                        f"write {record.op_id} repeats a previously written value; "
                        f"the register checker requires pairwise distinct writes",
                        (record.op_id,),
                    )
                )
                return
            # Defer-mode placeholder created by an earlier read of this
            # value: the write has now arrived, so the placeholder adopts it.
            if existing.closed:
                self._reopen(key, existing)
            else:
                self._open(key)
            existing.write_id = record.op_id
            existing.has_write = True
            existing.write_invoked = record.invoked_at
            existing.max_inv = max(existing.max_inv, record.invoked_at)
            if existing.min_read_resp < record.invoked_at:
                self._flag(
                    Violation(
                        "read-from-future",
                        f"read {existing.first_read_id} responded before its "
                        f"write {record.op_id} was invoked",
                        (existing.first_read_id or "?", record.op_id),
                    )
                )
                return
            self._check_crossings(existing)
            return
        cluster = _Cluster(
            write_id=record.op_id,
            max_inv=record.invoked_at,
            min_resp=math.inf,
            write_invoked=record.invoked_at,
        )
        self._clusters[key] = cluster
        self._open(key)

    def on_complete(self, record: OperationRecord) -> None:
        if record.kind == WRITE:
            key = _value_key(record.value)
            cluster = self._clusters.get(key)
            if cluster is None or not cluster.has_write:
                # invoke was never observed (stream joined late, or a defer
                # placeholder holds the value): register/adopt now.
                self.on_invoke(record)
                cluster = self._clusters.get(key)
            if cluster is None or cluster.write_id != record.op_id:
                # Duplicate write value: flagged when its invoke was observed
                # (re-dispatching to on_invoke here would double-count the op
                # and append the violation a second time).
                return
            self._update(key, cluster, new_resp=record.responded_at)
        else:
            self.reads_checked += 1
            key = _value_key(record.value)
            cluster = self._clusters.get(key)
            if cluster is None:
                if self.unknown_values == "flag":
                    self._flag(
                        Violation(
                            "unwritten-value",
                            f"read {record.op_id} returned a value no observed "
                            f"write produced (and not the initial value)",
                            (record.op_id,),
                        )
                    )
                    return
                # defer mode: a write-less placeholder joins the frontier and
                # constrains ordering like any cluster; the merge pass flags
                # it as unwritten only if no shard ever saw its write.
                cluster = _Cluster(
                    write_id=f"<unwritten:{record.op_id}>",
                    max_inv=-math.inf,
                    min_resp=math.inf,
                    write_invoked=-math.inf,
                    has_write=False,
                )
                self._clusters[key] = cluster
                self._open(key)
            if record.responded_at is not None and (
                record.responded_at < cluster.write_invoked
            ):
                # Bookkeeping still records the offending read so the shard
                # merge can recompute this violation from summaries alone;
                # the (a, b) crossing summary stays untouched, matching the
                # early return of the original single-stream semantics.
                cluster.note_read(record)
                self._flag(
                    Violation(
                        "read-from-future",
                        f"read {record.op_id} responded before its write "
                        f"{cluster.write_id} was invoked",
                        (record.op_id, cluster.write_id),
                    )
                )
                return
            cluster.note_read(record)
            self._update(
                key,
                cluster,
                new_inv=record.invoked_at,
                new_resp=record.responded_at,
            )

    # Direct-feed aliases for callers not going through a sink.
    observe_invoke = on_invoke
    observe_complete = on_complete

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    @property
    def ok(self) -> bool:
        return not self.violations

    def result(self) -> "IncrementalCheckResult":
        return IncrementalCheckResult(
            ok=self.ok,
            violations=tuple(self.violations),
            ops_seen=self.ops_seen,
            reads_checked=self.reads_checked,
            clusters=len(self._clusters),
            frontier_size=len(self._frontier),
        )

    def cluster_summaries(self) -> List[ClusterSummary]:
        """Snapshot every cluster (open, closed and the initial one) as
        picklable :class:`ClusterSummary` rows for the shard-merge pass.

        Rows are sorted by ``(key, write_id)`` so the export is canonical —
        independent of update order, frontier evictions and dict iteration.
        """
        rows = []
        for key, cluster in self._clusters.items():
            rows.append(
                ClusterSummary(
                    key=key,
                    write_id=cluster.write_id,
                    has_write=cluster.has_write,
                    write_invoked=cluster.write_invoked,
                    max_inv=cluster.max_inv,
                    min_resp=cluster.min_resp,
                    min_read_resp=cluster.min_read_resp,
                    reads=cluster.reads,
                    first_read_inv=cluster.first_read_inv,
                    first_read_id=cluster.first_read_id,
                    initial=key == self._initial_key
                    and cluster.write_id == "<initial>",
                )
            )
        rows.sort(key=lambda r: (r.key, r.write_id))
        return rows

    # ------------------------------------------------------------------
    # cluster maintenance
    # ------------------------------------------------------------------
    def _flag(self, violation: Violation) -> None:
        if len(self.violations) < self.max_violations:
            self.violations.append(violation)

    def _open(self, key: bytes) -> None:
        """(Re)insert a cluster into the frontier, evicting LRU overflow."""
        self._frontier.pop(key, None)
        self._frontier[key] = None
        while len(self._frontier) > self.frontier_limit:
            old_key = next(iter(self._frontier))
            del self._frontier[old_key]
            self._close(self._clusters[old_key])

    def _close(self, cluster: _Cluster) -> None:
        cluster.closed = True
        if cluster.min_resp == math.inf:
            # Unread pending write: can never cross anything; drop from the
            # staircase entirely (it stays in _clusters for value lookups).
            return
        index = bisect.bisect_left(self._closed_b, cluster.min_resp)
        self._closed_b.insert(index, cluster.min_resp)
        self._closed_a.insert(index, cluster.max_inv)
        self._closed_ids.insert(index, cluster.write_id)
        if index == len(self._closed_b) - 1 and (
            not self._closed_a_prefix_max
            or cluster.max_inv >= self._closed_a_prefix_max[-1]
        ):
            self._closed_a_prefix_max.append(cluster.max_inv)
        else:
            self._rebuild_prefix_max(start=index)

    def _rebuild_prefix_max(self, start: int = 0) -> None:
        running = self._closed_a_prefix_max[start - 1] if start > 0 else -math.inf
        del self._closed_a_prefix_max[start:]
        for a in self._closed_a[start:]:
            running = max(running, a)
            self._closed_a_prefix_max.append(running)

    def _reopen(self, key: bytes, cluster: _Cluster) -> None:
        """A closed cluster received a late event: pull it back and rebuild."""
        self.reopened_clusters += 1
        cluster.closed = False
        if cluster.min_resp != math.inf:
            index = bisect.bisect_left(self._closed_b, cluster.min_resp)
            while index < len(self._closed_b):
                if self._closed_ids[index] == cluster.write_id:
                    del self._closed_b[index]
                    del self._closed_a[index]
                    del self._closed_ids[index]
                    self._rebuild_prefix_max(start=index)
                    break
                if self._closed_b[index] != cluster.min_resp:
                    break  # not in the staircase (should not happen)
                index += 1
        self._open(key)

    def _update(
        self,
        key: bytes,
        cluster: _Cluster,
        *,
        new_inv: Optional[float] = None,
        new_resp: Optional[float] = None,
    ) -> None:
        if cluster.closed:
            self._reopen(key, cluster)
        else:
            self._open(key)  # refresh LRU position
        if new_inv is not None:
            cluster.max_inv = max(cluster.max_inv, new_inv)
        if new_resp is not None:
            cluster.min_resp = min(cluster.min_resp, new_resp)
        self._check_crossings(cluster)

    # ------------------------------------------------------------------
    # the pairwise crossing test
    # ------------------------------------------------------------------
    def _check_crossings(self, cluster: _Cluster) -> None:
        """Flag if any other cluster crosses ``cluster``: b' < a and b < a'."""
        if cluster.min_resp == math.inf:
            return  # no member responded yet: cannot cross anything
        # Frontier clusters: direct scan (bounded by frontier_limit).
        for other_key in self._frontier:
            other = self._clusters[other_key]
            if other is cluster:
                continue
            if other.min_resp < cluster.max_inv and cluster.min_resp < other.max_inv:
                self._flag(
                    Violation(
                        "cluster-cycle",
                        f"operations around write {cluster.write_id} and write "
                        f"{other.write_id} mutually precede each other; no "
                        f"linearisation can order their blocks",
                        (cluster.write_id, other.write_id),
                    )
                )
                return
        # Closed clusters: max a among those with b < a(cluster).
        index = bisect.bisect_left(self._closed_b, cluster.max_inv)
        if index > 0 and self._closed_a_prefix_max[index - 1] > cluster.min_resp:
            self._flag(
                Violation(
                    "cluster-cycle",
                    f"operations around write {cluster.write_id} and an "
                    f"earlier retired write mutually precede each other; no "
                    f"linearisation can order their blocks",
                    (cluster.write_id,),
                )
            )


@dataclass(frozen=True)
class IncrementalCheckResult:
    """Outcome of an incremental check: truthy iff no violation was seen."""

    ok: bool
    violations: Tuple[Violation, ...] = ()
    ops_seen: int = 0
    reads_checked: int = 0
    clusters: int = 0
    frontier_size: int = 0

    def __bool__(self) -> bool:
        return self.ok


def replay_operations(
    checker: IncrementalAtomicityChecker, operations
) -> IncrementalAtomicityChecker:
    """Feed recorded operations to a checker in live-stream event order.

    The ordering convention — invocations by invocation time, completions
    by response time, invocations first on ties — is the single source of
    truth shared by :func:`check_history_incrementally` and the sharded
    replay in :func:`repro.consistency.shardmerge.check_history_sharded`;
    keeping it in one place keeps the differential suite's three paths
    comparable by construction.  Returns the checker for chaining.
    """
    events: List[Tuple[float, int, OperationRecord]] = []
    for op in operations:
        events.append((op.invoked_at, 0, op))
        if op.is_complete:
            events.append((op.responded_at, 1, op))
    events.sort(key=lambda e: (e[0], e[1]))
    for _, phase, op in events:
        if phase == 0:
            checker.on_invoke(op)
        else:
            checker.on_complete(op)
    return checker


def check_history_incrementally(
    history, *, initial_value: bytes = b"", frontier_limit: int = 256
) -> IncrementalCheckResult:
    """Run the incremental checker over an already-recorded history.

    This is the cross-validation entry point: it replays a
    :class:`~repro.consistency.history.History` through the online checker
    in event order (invocations by invocation time, completions by response
    time), exactly as a live stream would have delivered them.
    """
    checker = IncrementalAtomicityChecker(
        initial_value=initial_value, frontier_limit=frontier_limit
    )
    return replay_operations(checker, history.operations()).result()
