"""Incremental (online) atomicity checking for distinct-write-value registers.

The Wing–Gong–Lowe checker in :mod:`repro.consistency.wgl` is exponential
in the degree of concurrency and needs the whole history in memory.  This
module checks the same property *online*, consuming the operation event
stream as operations retire, in amortized O(log clusters) per operation and
with memory proportional to the number of distinct writes (a handful of
floats and a digest per write) — never the full history.  It is designed to
hang off a :class:`~repro.consistency.stream.StreamingRecorder` as a
:class:`~repro.consistency.stream.StreamObserver`.

Theory (register specialisation with pairwise-distinct write values)
--------------------------------------------------------------------
Group every write ``w`` with the reads that returned its value into a
*cluster* ``C(w)``.  In any linearisation of a register history the members
of a cluster form a contiguous block (the write first, then its reads —
any interposed write would change what the reads must return), so a
linearisation is exactly a total order on clusters that respects real-time
precedence between their members.  Summarise each cluster by

* ``a(C)`` — the latest invocation time of any member, and
* ``b(C)`` — the earliest response time of any member,

so that "some member of C1 precedes some member of C2" is exactly
``b(C1) < a(C2)``.  The history is linearizable iff

1. no read responds before its write is invoked (the block is internally
   feasible), and
2. the cluster precedence digraph is acyclic.

Because edges are threshold comparisons of the (a, b) summaries, any cycle
contains a 2-cycle: take the cycle member ``Cm`` with minimal ``b``; the
cycle supplies an edge into its predecessor's successor chain with
``b(Cm) <= b(C_{m-2}) < a(C_{m-1})``, giving ``Cm -> C_{m-1}`` alongside
the cycle's ``C_{m-1} -> Cm``.  Acyclicity therefore reduces to the
*pairwise crossing test*: no two clusters with ``b(C1) < a(C2)`` and
``b(C2) < a(C1)``.  This is the classical Gibbons–Korach style polynomial
characterisation, evaluated incrementally here.

Incomplete operations follow the WGL conventions: incomplete reads are
ignored, and an incomplete write only matters once some completed read
returned its value (its cluster then has ``b`` drawn from its reads, the
write itself contributing ``+inf``); an unread incomplete write has
``b = +inf`` and can never participate in a crossing, matching WGL
discarding it.

Flat-core layout
----------------
Cluster state lives in flat parallel lists keyed by small integer cluster
ids (``cid``), with one dict mapping 16-byte BLAKE2 value digests to cids —
no per-cluster objects on the hot path.  Every cluster whose ``b`` is
finite also owns one slot in a single *interval table*: lists sorted by
``b`` carrying a snapshot of ``a`` plus a running top-2 prefix maximum of
``a`` (value, owner cid, runner-up).  Because ``a`` only grows and ``b``
only shrinks, the crossing predicate is monotone, and the table answers
"does any other cluster have ``b < a(C)`` and ``a > b(C)``" with one
``bisect`` and two list reads — the top-2 prefix lets the query exclude
``C``'s own entry without a range structure.  In a time-ordered stream
first responses arrive in nondecreasing order, so table inserts are
tail-appends (O(1) amortized); a-growth near the tail refreshes the prefix
in place, and rare far-from-tail growth parks the cid in a small *dirty
overlay* that queries scan with current values and a compaction folds back
in batches.  Out-of-order direct feeds fall back to a mid-table insert
that rebuilds the prefix from the insertion point — correct, merely
slower, and never hit by the simulator's time-ordered streams.

The crossing test itself is therefore O(log n) on clean histories; only
when a crossing *exists* (the history is non-linearizable) does the
checker replay the legacy LRU-order frontier scan to name the same
partner, in the same order, with the same message bytes as the PR 5
object-based implementation — violation output is byte-identical.

Frontier bookkeeping
--------------------
The bounded LRU *frontier* of open clusters survives as pure bookkeeping:
``frontier_limit`` evictions mark clusters closed and late events reopen
them (counted in ``reopened_clusters``), but open/closed no longer selects
between two crossing structures, so reopening does zero structural work —
the staircase-removal fallback of the old core (which could silently leave
a stale entry behind on duplicate ``min_resp`` runs) is structurally gone.

Batched ingestion
-----------------
:meth:`IncrementalAtomicityChecker.begin_batch` /
:meth:`~IncrementalAtomicityChecker.end_batch` bracket a batch of events
(one event-loop drain, fed by
:class:`~repro.consistency.stream.CheckerBatcher`): summary bookkeeping
stays per-record, but crossing tests are deferred and run once per touched
cluster at the batch end.  Monotonicity makes this sound *and* complete —
a crossing visible mid-batch is still visible at batch end, and a clean
batch end proves every intermediate state was clean.
"""

from __future__ import annotations

import hashlib
import math
from bisect import bisect_left, insort
from dataclasses import dataclass
from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.consistency.stream import WRITE, OperationRecord, StreamObserver

#: Digest key of the distinguished initial value / any value at time -inf.
_INITIAL = b"\x00" * 16

_INF = math.inf
_NEG_INF = -math.inf

#: a-growth this close to the table tail refreshes the prefix eagerly;
#: farther entries go to the dirty overlay instead (bounding the refresh).
_EAGER_TAIL = 32

#: Dirty-overlay compaction threshold (bounds the per-query overlay scan).
_DIRTY_LIMIT = 16


def _value_key(value: Optional[bytes]) -> bytes:
    if value is None:
        value = b""
    return hashlib.blake2b(value, digest_size=16).digest()


@dataclass(frozen=True)
class Violation:
    """One detected atomicity violation."""

    kind: str
    description: str
    op_ids: Tuple[str, ...] = ()

    def __str__(self) -> str:  # pragma: no cover - debugging convenience
        return f"[{self.kind}] {self.description}"


class ClusterSummary(NamedTuple):
    """A picklable, shard-portable snapshot of one cluster's summary.

    Exported by :meth:`IncrementalAtomicityChecker.cluster_summaries` and
    consumed by :mod:`repro.consistency.shardmerge`, which combines partial
    summaries of the same write value from different shards (``max`` of
    ``max_inv``, ``min`` of ``min_resp`` …) and re-runs the global checks.
    """

    key: bytes  # 16-byte value digest
    write_id: str
    has_write: bool
    write_invoked: float
    max_inv: float
    min_resp: float
    min_read_resp: float
    reads: int
    first_read_inv: float
    first_read_id: Optional[str]
    initial: bool  # True for the checker's distinguished initial-value cluster


class IncrementalAtomicityChecker(StreamObserver):
    """Online register linearizability checker over an operation stream.

    Subscribe it to any :class:`~repro.consistency.stream.HistorySink`::

        recorder = StreamingRecorder(window=256)
        checker = recorder.subscribe(IncrementalAtomicityChecker())
        ... run the workload ...
        result = checker.result()

    or feed it records directly with :meth:`observe_invoke` /
    :meth:`observe_complete` (aliases of the observer callbacks).
    """

    def __init__(
        self,
        *,
        initial_value: bytes = b"",
        frontier_limit: int = 256,
        max_violations: int = 16,
        unknown_values: str = "flag",
    ) -> None:
        if frontier_limit < 1:
            raise ValueError("frontier_limit must be positive")
        if unknown_values not in ("flag", "defer"):
            raise ValueError(
                f"unknown_values must be 'flag' or 'defer', got {unknown_values!r}"
            )
        self.initial_value = initial_value
        self.frontier_limit = frontier_limit
        self.max_violations = max_violations
        #: ``"flag"`` treats a read of a never-written value as a violation
        #: (the whole-stream semantics); ``"defer"`` records a write-less
        #: placeholder cluster instead, for shards of a sharded run where
        #: the write may have been routed to a different shard — the merge
        #: pass in :mod:`repro.consistency.shardmerge` settles it.
        self.unknown_values = unknown_values
        self.violations: List[Violation] = []
        self.ops_seen = 0
        self.reads_checked = 0
        self.reopened_clusters = 0
        #: Every (value key, write op id, invocation time) that claimed an
        #: already-claimed value — exported so the shard merge can decide
        #: duplicates canonically across shards.
        self.duplicate_write_claims: List[Tuple[bytes, str, float]] = []

        # -- flat cluster state: parallel lists indexed by cid -----------
        # value digest -> cid (authoritative, one entry per write ever)
        self._cid_of: Dict[bytes, int] = {}
        self._write_id: List[str] = []
        self._max_inv: List[float] = []  # a(C): latest member invocation
        self._min_resp: List[float] = []  # b(C): earliest member response
        self._write_invoked: List[float] = []
        self._has_write: List[bool] = []
        self._is_closed: List[bool] = []
        # shard-merge bookkeeping (not on the crossing path)
        self._min_read_resp: List[float] = []
        self._reads: List[int] = []
        self._first_read_inv: List[float] = []
        self._first_read_id: List[Optional[str]] = []

        # open clusters in LRU order of last update
        self._frontier: Dict[int, None] = {}

        # -- the interval table: every responded cluster, sorted by b ----
        self._tb: List[float] = []  # current b, ascending
        self._ta: List[float] = []  # snapshot of a (exact unless dirty)
        self._tcid: List[int] = []  # owner cid per slot
        self._pos: List[int] = []  # cid -> table slot (-1 while b == inf)
        # running top-2 prefix max of _ta: value, owner cid, runner-up
        self._pm1: List[float] = []
        self._pa1: List[int] = []
        self._pm2: List[float] = []
        # cids whose a grew past their snapshot without a prefix refresh
        self._dirty: Dict[int, None] = {}

        #: When not None, cids whose crossing test is deferred to
        #: :meth:`end_batch` (insertion-ordered, deduplicated).
        self._deferred: Optional[Dict[int, None]] = None

        self._initial_key = _value_key(initial_value)
        cid = self._new_cluster(
            self._initial_key,
            write_id="<initial>",
            max_inv=_NEG_INF,
            min_resp=_NEG_INF,
            write_invoked=_NEG_INF,
        )
        self._frontier[cid] = None
        self._table_insert(cid)

    # ------------------------------------------------------------------
    # StreamObserver interface
    # ------------------------------------------------------------------
    def on_invoke(self, record: OperationRecord) -> None:
        self.ops_seen += 1
        if record.kind != WRITE:
            return
        key = _value_key(record.value)
        cid = self._cid_of.get(key)
        if cid is not None:
            if self._has_write[cid]:
                self.duplicate_write_claims.append(
                    (key, record.op_id, record.invoked_at)
                )
                self._flag(
                    Violation(
                        "duplicate-write-value",
                        f"write {record.op_id} repeats a previously written value; "
                        f"the register checker requires pairwise distinct writes",
                        (record.op_id,),
                    )
                )
                return
            # Defer-mode placeholder created by an earlier read of this
            # value: the write has now arrived, so the placeholder adopts it.
            if self._is_closed[cid]:
                self._reopen(cid)
            else:
                self._open(cid)
            self._write_id[cid] = record.op_id
            self._has_write[cid] = True
            self._write_invoked[cid] = record.invoked_at
            if record.invoked_at > self._max_inv[cid]:
                self._max_inv[cid] = record.invoked_at
                self._note_a_growth(cid)
            if self._min_read_resp[cid] < record.invoked_at:
                self._flag(
                    Violation(
                        "read-from-future",
                        f"read {self._first_read_id[cid]} responded before its "
                        f"write {record.op_id} was invoked",
                        (self._first_read_id[cid] or "?", record.op_id),
                    )
                )
                return
            self._check_crossings(cid)
            return
        cid = self._new_cluster(
            key,
            write_id=record.op_id,
            max_inv=record.invoked_at,
            min_resp=_INF,
            write_invoked=record.invoked_at,
        )
        self._open(cid)

    def on_complete(self, record: OperationRecord) -> None:
        if record.kind == WRITE:
            key = _value_key(record.value)
            cid = self._cid_of.get(key)
            if cid is None or not self._has_write[cid]:
                # invoke was never observed (stream joined late, or a defer
                # placeholder holds the value): register/adopt now.
                self.on_invoke(record)
                cid = self._cid_of.get(key)
            if cid is None or self._write_id[cid] != record.op_id:
                # Duplicate write value: flagged when its invoke was observed
                # (re-dispatching to on_invoke here would double-count the op
                # and append the violation a second time).
                return
            self._update(cid, new_resp=record.responded_at)
        else:
            self.reads_checked += 1
            key = _value_key(record.value)
            cid = self._cid_of.get(key)
            if cid is None:
                if self.unknown_values == "flag":
                    self._flag(
                        Violation(
                            "unwritten-value",
                            f"read {record.op_id} returned a value no observed "
                            f"write produced (and not the initial value)",
                            (record.op_id,),
                        )
                    )
                    return
                # defer mode: a write-less placeholder joins the frontier and
                # constrains ordering like any cluster; the merge pass flags
                # it as unwritten only if no shard ever saw its write.
                cid = self._new_cluster(
                    key,
                    write_id=f"<unwritten:{record.op_id}>",
                    max_inv=_NEG_INF,
                    min_resp=_INF,
                    write_invoked=_NEG_INF,
                    has_write=False,
                )
                self._open(cid)
            if record.responded_at is not None and (
                record.responded_at < self._write_invoked[cid]
            ):
                # Bookkeeping still records the offending read so the shard
                # merge can recompute this violation from summaries alone;
                # the (a, b) crossing summary stays untouched, matching the
                # early return of the original single-stream semantics.
                self._note_read(cid, record)
                self._flag(
                    Violation(
                        "read-from-future",
                        f"read {record.op_id} responded before its write "
                        f"{self._write_id[cid]} was invoked",
                        (record.op_id, self._write_id[cid]),
                    )
                )
                return
            self._note_read(cid, record)
            self._update(
                cid,
                new_inv=record.invoked_at,
                new_resp=record.responded_at,
            )

    # Direct-feed aliases for callers not going through a sink.
    observe_invoke = on_invoke
    observe_complete = on_complete

    # ------------------------------------------------------------------
    # batched ingestion (one event-loop drain = one batch)
    # ------------------------------------------------------------------
    def begin_batch(self) -> None:
        """Defer crossing tests until :meth:`end_batch`.

        Summary updates stay per-record; only the (monotone) crossing
        predicate is postponed, so the batch verdict equals the per-op
        verdict.  Nested calls coalesce into the outermost batch.
        """
        if self._deferred is None:
            self._deferred = {}

    def end_batch(self) -> None:
        """Run one crossing test per cluster touched since ``begin_batch``."""
        pending, self._deferred = self._deferred, None
        if pending:
            for cid in pending:
                self._check_crossings(cid)

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    @property
    def ok(self) -> bool:
        return not self.violations

    def result(self) -> "IncrementalCheckResult":
        return IncrementalCheckResult(
            ok=self.ok,
            violations=tuple(self.violations),
            ops_seen=self.ops_seen,
            reads_checked=self.reads_checked,
            clusters=len(self._cid_of),
            frontier_size=len(self._frontier),
        )

    def cluster_summaries(self) -> List[ClusterSummary]:
        """Snapshot every cluster (open, closed and the initial one) as
        picklable :class:`ClusterSummary` rows for the shard-merge pass.

        Rows are sorted by ``(key, write_id)`` so the export is canonical —
        independent of update order, frontier evictions and dict iteration.
        """
        rows = []
        for key, cid in self._cid_of.items():
            rows.append(
                ClusterSummary(
                    key=key,
                    write_id=self._write_id[cid],
                    has_write=self._has_write[cid],
                    write_invoked=self._write_invoked[cid],
                    max_inv=self._max_inv[cid],
                    min_resp=self._min_resp[cid],
                    min_read_resp=self._min_read_resp[cid],
                    reads=self._reads[cid],
                    first_read_inv=self._first_read_inv[cid],
                    first_read_id=self._first_read_id[cid],
                    initial=key == self._initial_key
                    and self._write_id[cid] == "<initial>",
                )
            )
        rows.sort(key=lambda r: (r.key, r.write_id))
        return rows

    # ------------------------------------------------------------------
    # cluster maintenance
    # ------------------------------------------------------------------
    def _new_cluster(
        self,
        key: bytes,
        *,
        write_id: str,
        max_inv: float,
        min_resp: float,
        write_invoked: float,
        has_write: bool = True,
    ) -> int:
        cid = len(self._write_id)
        self._cid_of[key] = cid
        self._write_id.append(write_id)
        self._max_inv.append(max_inv)
        self._min_resp.append(min_resp)
        self._write_invoked.append(write_invoked)
        self._has_write.append(has_write)
        self._is_closed.append(False)
        self._min_read_resp.append(_INF)
        self._reads.append(0)
        self._first_read_inv.append(_INF)
        self._first_read_id.append(None)
        self._pos.append(-1)
        return cid

    def _note_read(self, cid: int, record: OperationRecord) -> None:
        self._reads[cid] += 1
        responded = record.responded_at
        if responded is not None and responded < self._min_read_resp[cid]:
            self._min_read_resp[cid] = responded
        if (record.invoked_at, record.op_id) < (
            self._first_read_inv[cid],
            self._first_read_id[cid] or "",
        ):
            self._first_read_inv[cid] = record.invoked_at
            self._first_read_id[cid] = record.op_id

    def _flag(self, violation: Violation) -> None:
        if len(self.violations) < self.max_violations:
            self.violations.append(violation)

    def _open(self, cid: int) -> None:
        """(Re)insert a cluster into the frontier, evicting LRU overflow."""
        frontier = self._frontier
        frontier.pop(cid, None)
        frontier[cid] = None
        if len(frontier) > self.frontier_limit:
            is_closed = self._is_closed
            while len(frontier) > self.frontier_limit:
                old = next(iter(frontier))
                del frontier[old]
                is_closed[old] = True

    def _reopen(self, cid: int) -> None:
        """A closed cluster received a late event: pull it back.

        Pure bookkeeping — the interval table holds open and closed
        clusters alike, so no structural surgery (and no stale-entry
        hazard) is involved.
        """
        self.reopened_clusters += 1
        self._is_closed[cid] = False
        self._open(cid)

    def _update(
        self,
        cid: int,
        *,
        new_inv: Optional[float] = None,
        new_resp: Optional[float] = None,
    ) -> None:
        if self._is_closed[cid]:
            self._reopen(cid)
        else:
            self._open(cid)  # refresh LRU position
        if new_inv is not None and new_inv > self._max_inv[cid]:
            self._max_inv[cid] = new_inv
            self._note_a_growth(cid)
        if new_resp is not None and new_resp < self._min_resp[cid]:
            self._min_resp[cid] = new_resp
            self._note_b_drop(cid)
        self._check_crossings(cid)

    # ------------------------------------------------------------------
    # interval-table maintenance
    # ------------------------------------------------------------------
    def _table_insert(self, cid: int) -> None:
        """Give a cluster whose ``b`` just became finite its table slot."""
        tb = self._tb
        b = self._min_resp[cid]
        a = self._max_inv[cid]
        size = len(tb)
        if size == 0 or b >= tb[-1]:
            # Tail append — the only path a time-ordered stream takes.
            tb.append(b)
            self._ta.append(a)
            self._tcid.append(cid)
            self._pos[cid] = size
            if size == 0:
                self._pm1.append(a)
                self._pa1.append(cid)
                self._pm2.append(_NEG_INF)
            else:
                m1 = self._pm1[-1]
                if a > m1:
                    self._pm1.append(a)
                    self._pa1.append(cid)
                    self._pm2.append(m1)
                else:
                    self._pm1.append(m1)
                    self._pa1.append(self._pa1[-1])
                    self._pm2.append(a if a > self._pm2[-1] else self._pm2[-1])
            return
        # Out-of-order feed: mid-table insert, shift the tail's slots.
        index = bisect_left(tb, b)
        tb.insert(index, b)
        self._ta.insert(index, a)
        self._tcid.insert(index, cid)
        pos = self._pos
        for shifted in self._tcid[index + 1 :]:
            pos[shifted] += 1
        pos[cid] = index
        self._recompute_prefix(index)

    def _table_remove(self, cid: int) -> None:
        index = self._pos[cid]
        if index < 0 or self._tcid[index] != cid:
            # A stale position would make the deletes below silently evict
            # some *other* cluster's interval — the failure mode the old
            # closed-staircase `_reopen` could only `break` past.  Refuse
            # loudly instead of corrupting the table.
            raise RuntimeError(
                f"interval-table slot for cluster {cid} is stale "
                f"(pos={index}); the checker's index invariant is broken"
            )
        del self._tb[index]
        del self._ta[index]
        del self._tcid[index]
        pos = self._pos
        for shifted in self._tcid[index:]:
            pos[shifted] -= 1
        pos[cid] = -1
        self._dirty.pop(cid, None)
        del self._pm1[index:]
        del self._pa1[index:]
        del self._pm2[index:]
        self._recompute_prefix(index)

    def _note_b_drop(self, cid: int) -> None:
        """``min_resp`` decreased: insert into (or move within) the table."""
        if self._pos[cid] < 0:
            self._table_insert(cid)
        else:
            # A response earlier than the recorded minimum can only arrive
            # from an out-of-order direct feed; relocate the slot.
            self._table_remove(cid)
            self._table_insert(cid)

    def _note_a_growth(self, cid: int) -> None:
        """``max_inv`` grew: refresh the prefix in place near the tail,
        otherwise park the cid in the dirty overlay."""
        index = self._pos[cid]
        if index < 0 or cid in self._dirty:
            return
        if len(self._tb) - index <= _EAGER_TAIL:
            self._ta[index] = self._max_inv[cid]
            self._recompute_prefix(index)
        else:
            self._dirty[cid] = None
            if len(self._dirty) > _DIRTY_LIMIT:
                self._compact()

    def _compact(self) -> None:
        """Fold the dirty overlay's current ``a`` values back into the
        table snapshot and refresh the prefix once from the lowest slot."""
        if not self._dirty:
            return
        lowest = len(self._tb)
        for cid in self._dirty:
            index = self._pos[cid]
            self._ta[index] = self._max_inv[cid]
            if index < lowest:
                lowest = index
        self._dirty.clear()
        self._recompute_prefix(lowest)

    def _recompute_prefix(self, start: int) -> None:
        """Rebuild the top-2 prefix max of ``_ta`` from ``start`` on."""
        if start > 0:
            m1 = self._pm1[start - 1]
            c1 = self._pa1[start - 1]
            m2 = self._pm2[start - 1]
        else:
            m1 = _NEG_INF
            c1 = -1
            m2 = _NEG_INF
        ta = self._ta
        tcid = self._tcid
        pm1 = self._pm1
        pa1 = self._pa1
        pm2 = self._pm2
        del pm1[start:]
        del pa1[start:]
        del pm2[start:]
        for index in range(start, len(ta)):
            a = ta[index]
            if a > m1:
                m2 = m1
                m1 = a
                c1 = tcid[index]
            elif a > m2:
                m2 = a
            pm1.append(m1)
            pa1.append(c1)
            pm2.append(m2)

    # ------------------------------------------------------------------
    # the pairwise crossing test
    # ------------------------------------------------------------------
    def _check_crossings(self, cid: int) -> None:
        """Flag if any other cluster crosses ``cid``: b' < a and b < a'."""
        b = self._min_resp[cid]
        if b == _INF:
            return  # no member responded yet: cannot cross anything
        if self._deferred is not None:
            self._deferred[cid] = None
            return
        a = self._max_inv[cid]
        # Fast existence test: the b-sorted table answers "is there another
        # cluster with b' < a whose (snapshot) a' exceeds b" in O(log n);
        # the top-2 prefix excludes cid's own slot.  Snapshot a-values are
        # lower bounds, so a hit is always real; anything the snapshot
        # understates sits in the dirty overlay and is scanned with current
        # values.  On clean histories both probes miss and this is the
        # whole test.
        index = bisect_left(self._tb, a)
        if index:
            last = index - 1
            best = (
                self._pm1[last] if self._pa1[last] != cid else self._pm2[last]
            )
            if best > b:
                self._flag_crossing(cid)
                return
        if self._dirty:
            min_resp = self._min_resp
            max_inv = self._max_inv
            for other in self._dirty:
                if other != cid and min_resp[other] < a and max_inv[other] > b:
                    self._flag_crossing(cid)
                    return

    def _flag_crossing(self, cid: int) -> None:
        """A crossing exists; name the partner exactly as the legacy
        two-tier test did: scan the LRU frontier first (naming both write
        ids, first match in LRU order), else attribute it to a retired
        write."""
        a = self._max_inv[cid]
        b = self._min_resp[cid]
        min_resp = self._min_resp
        max_inv = self._max_inv
        for other in self._frontier:
            if other == cid:
                continue
            if min_resp[other] < a and b < max_inv[other]:
                self._flag(
                    Violation(
                        "cluster-cycle",
                        f"operations around write {self._write_id[cid]} and write "
                        f"{self._write_id[other]} mutually precede each other; no "
                        f"linearisation can order their blocks",
                        (self._write_id[cid], self._write_id[other]),
                    )
                )
                return
        self._flag(
            Violation(
                "cluster-cycle",
                f"operations around write {self._write_id[cid]} and an "
                f"earlier retired write mutually precede each other; no "
                f"linearisation can order their blocks",
                (self._write_id[cid],),
            )
        )

    # ------------------------------------------------------------------
    # self-checks (tests only)
    # ------------------------------------------------------------------
    def _audit(self) -> None:
        """Validate every internal invariant (slow; used by tests)."""
        # every responded cluster owns exactly one consistent table slot
        for key, cid in self._cid_of.items():
            if self._min_resp[cid] == _INF:
                assert self._pos[cid] == -1, (key, cid)
            else:
                index = self._pos[cid]
                assert 0 <= index < len(self._tb), (key, cid, index)
                assert self._tcid[index] == cid
                assert self._tb[index] == self._min_resp[cid]
                if cid in self._dirty:
                    assert self._ta[index] <= self._max_inv[cid]
                else:
                    assert self._ta[index] == self._max_inv[cid]
        assert len(self._tb) == len(self._ta) == len(self._tcid)
        assert len(self._tb) == len(self._pm1) == len(self._pa1) == len(self._pm2)
        assert all(
            self._tb[i] <= self._tb[i + 1] for i in range(len(self._tb) - 1)
        )
        # the top-2 prefix values match a from-scratch recomputation, and
        # the recorded argmax is *an* entry attaining the max (ties — and
        # the -inf seed — may legitimately record different owners than a
        # from-scratch pass; the query only needs some attaining owner)
        m1, m2 = _NEG_INF, _NEG_INF
        for i, a in enumerate(self._ta):
            if a > m1:
                m2, m1 = m1, a
            elif a > m2:
                m2 = a
            assert self._pm1[i] == m1 and self._pm2[i] == m2, i
            owner = self._pa1[i]
            if owner != -1:
                index = self._pos[owner]
                assert 0 <= index <= i and self._ta[index] == m1, i
            else:
                assert m1 == _NEG_INF, i
        # frontier holds exactly the open clusters
        for cid in self._frontier:
            assert not self._is_closed[cid]
        open_cids = {
            cid for cid in range(len(self._write_id)) if not self._is_closed[cid]
        }
        assert set(self._frontier) == open_cids


@dataclass(frozen=True)
class IncrementalCheckResult:
    """Outcome of an incremental check: truthy iff no violation was seen."""

    ok: bool
    violations: Tuple[Violation, ...] = ()
    ops_seen: int = 0
    reads_checked: int = 0
    clusters: int = 0
    frontier_size: int = 0

    def __bool__(self) -> bool:
        return self.ok


def replay_operations(
    checker: IncrementalAtomicityChecker, operations
) -> IncrementalAtomicityChecker:
    """Feed recorded operations to a checker in live-stream event order.

    The ordering convention — invocations by invocation time, completions
    by response time, invocations first on ties — is the single source of
    truth shared by :func:`check_history_incrementally` and the sharded
    replay in :func:`repro.consistency.shardmerge.check_history_sharded`;
    keeping it in one place keeps the differential suite's three paths
    comparable by construction.  Returns the checker for chaining.
    """
    events: List[Tuple[float, int, OperationRecord]] = []
    for op in operations:
        events.append((op.invoked_at, 0, op))
        if op.is_complete:
            events.append((op.responded_at, 1, op))
    events.sort(key=lambda e: (e[0], e[1]))
    for _, phase, op in events:
        if phase == 0:
            checker.on_invoke(op)
        else:
            checker.on_complete(op)
    return checker


def check_history_incrementally(
    history, *, initial_value: bytes = b"", frontier_limit: int = 256
) -> IncrementalCheckResult:
    """Run the incremental checker over an already-recorded history.

    This is the cross-validation entry point: it replays a
    :class:`~repro.consistency.history.History` through the online checker
    in event order (invocations by invocation time, completions by response
    time), exactly as a live stream would have delivered them.
    """
    checker = IncrementalAtomicityChecker(
        initial_value=initial_value, frontier_limit=frontier_limit
    )
    return replay_operations(checker, history.operations()).result()
